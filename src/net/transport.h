// The negotiation transport: how buyer- and seller-side engines exchange
// the typed envelopes of wire.h without ever holding pointers to each
// other. A node registers a NodeEndpoint under its name; peers address it
// by name only, so the same engine code runs over an in-process
// federation today and a socket transport later.
//
// Layering (see DESIGN.md, "Federation architecture"):
//
//   BuyerEngine / SellerEngine          negotiation logic
//           │  typed envelopes, node names
//           ▼
//   Transport (InProcessTransport, FaultyTransport, ...)
//           │  per-message accounting, delivery times, faults
//           ▼
//   SimNetwork                          byte counters + virtual clock
//
// All message/byte accounting and the virtual-clock arithmetic live in
// the transport; engines only see replies stamped with simulated arrival
// times and close each negotiation round with AdvanceRound() once their
// deadline policy has decided how long the round really lasted.
#ifndef QTRADE_NET_TRANSPORT_H_
#define QTRADE_NET_TRANSPORT_H_

#include <algorithm>
#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "net/network.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "types/row.h"
#include "util/status.h"

namespace qtrade {

/// Handler interface a federation node registers with a Transport to
/// receive negotiation traffic. Implementations (SellerEngine) must be
/// safe to call from transport worker threads: one endpoint can be
/// handling the buyer's RFB and a peer's subcontract RFB concurrently.
class NodeEndpoint {
 public:
  virtual ~NodeEndpoint() = default;

  virtual const std::string& name() const = 0;

  /// Fig. 2 steps S1–S2: answer a request-for-bids with priced offers.
  virtual Result<std::vector<Offer>> HandleRfb(const Rfb& rfb) = 0;

  /// Auction round (step S3): optionally undercut the current best.
  virtual std::optional<Offer> HandleAuctionTick(const AuctionTick& tick) = 0;

  /// Bargaining: accept the buyer's counter-offer or hold.
  virtual std::optional<Offer> HandleCounterOffer(
      const CounterOffer& counter) = 0;

  /// Award/decline feedback (strategy learning).
  virtual void HandleAwards(const AwardBatch& batch) = 0;

  /// Delivery of a previously sold answer (subcontract re-shipping).
  virtual Result<RowSet> HandleExecuteOffer(const std::string& offer_id) = 0;

  /// Receives one chunk of a streamed delivery, in stream order. A
  /// non-OK return aborts the stream (e.g. the connection died).
  using RowSink = std::function<Status(const RowSet& chunk)>;

  /// Streaming delivery of a sold answer: hands the result to `sink` in
  /// chunks of at most `chunk_rows` rows, each carrying the full output
  /// schema. An empty result still emits exactly one (zero-row) chunk so
  /// the schema always travels. Chunk boundaries are the ONLY degree of
  /// freedom: concatenating the chunks must equal HandleExecuteOffer's
  /// RowSet for every chunk_rows value. The default implementation
  /// materializes the whole answer and slices it; engines with a
  /// columnar execution path override this to emit chunks as they are
  /// produced (real first-row latency).
  virtual Status HandleExecuteOfferChunked(const std::string& offer_id,
                                           size_t chunk_rows,
                                           const RowSink& sink) {
    if (chunk_rows == 0) chunk_rows = 1;
    auto rows = HandleExecuteOffer(offer_id);
    if (!rows.ok()) return rows.status();
    RowSet chunk;
    chunk.schema = rows->schema;
    if (rows->rows.empty()) return sink(chunk);
    for (size_t start = 0; start < rows->rows.size(); start += chunk_rows) {
      const size_t end = std::min(rows->rows.size(), start + chunk_rows);
      chunk.rows.assign(rows->rows.begin() + start, rows->rows.begin() + end);
      QTRADE_RETURN_IF_ERROR(sink(chunk));
    }
    return Status::OK();
  }

  /// Parallel plan-search width hint (QtOptions::dp_threads) applied by
  /// whoever hosts this endpoint — the NodeServer daemon or the
  /// QueryTradingOptimizer facade. Endpoints that run no DP ignore it;
  /// the search itself draws threads from the process-shared
  /// PlanSearchPool, never per-endpoint ones.
  virtual void ConfigurePlanSearch(int dp_threads) { (void)dp_threads; }

  /// Appends this endpoint's introspection state as flat key/value pairs
  /// (offer-cache occupancy/hit counters, DP configuration, RFB totals)
  /// to a StatsSnapshot under assembly — the NodeServer serves these via
  /// the kStatsRequest admin envelope. Must be safe to call concurrently
  /// with negotiation handlers; the default exposes nothing.
  virtual void CollectStats(
      std::vector<std::pair<std::string, std::string>>* out) const {
    (void)out;
  }
};

/// Measured delivery of one sold answer (the execute-offer leg).
/// Timestamps are microseconds since the fetch was issued, so
/// first_row_us is the time-to-first-row the QT paper's property vector
/// talks about; for a whole-RowSet delivery first == last.
struct DeliveryStats {
  bool streamed = false;     // arrived as a kRowChunk stream, not one kRowSet
  int64_t chunks = 0;
  int64_t rows = 0;
  int64_t bytes = 0;         // wire bytes received (0 for in-process)
  int64_t first_row_us = 0;  // request start -> first chunk landed
  int64_t last_row_us = 0;   // request start -> delivery complete
};

/// One seller's reply to an RFB fan-out.
struct OfferReply {
  std::string seller;
  std::vector<Offer> offers;
  /// False when the seller's handler failed (it declined with an error);
  /// the RFB was still delivered and accounted.
  bool ok = true;
  /// True when fault injection lost the reply in transit: `offers` is
  /// empty and `dropped_offers` counts what was lost.
  bool dropped = false;
  int64_t dropped_offers = 0;
  /// True for an at-least-once duplicate delivery of an earlier reply.
  bool duplicated = false;
  /// Simulated time, relative to the round start, at which this reply
  /// lands at the buyer: RFB delivery + seller compute + reply delivery.
  double arrival_ms = 0;
};

/// Reply to a unicast negotiation message (auction tick, counter-offer).
struct TickReply {
  std::optional<Offer> updated;
  double elapsed_ms = 0;  // round-trip including seller compute
  bool dropped = false;   // lost by fault injection; `updated` is empty
};

class Transport {
 public:
  virtual ~Transport() = default;

  /// Registers (or replaces) the endpoint reachable under its name().
  virtual void Register(NodeEndpoint* endpoint) = 0;
  virtual NodeEndpoint* endpoint(const std::string& name) const = 0;
  virtual std::vector<std::string> NodeNames() const = 0;

  /// One RFB fan-out: delivers `rfb` to every named target, runs the
  /// seller handlers (possibly in parallel), accounts all RFB and reply
  /// messages under `rfb_kind`/`offer_kind`, and returns one reply per
  /// target stamped with its simulated arrival time. Does NOT advance
  /// the virtual clock: the caller applies its deadline policy to the
  /// arrival times and closes the round with AdvanceRound().
  virtual std::vector<OfferReply> BroadcastRfb(
      const std::string& from, const Rfb& rfb,
      const std::vector<std::string>& to, const char* rfb_kind = "rfb",
      const char* offer_kind = "offer") = 0;

  virtual TickReply SendAuctionTick(const std::string& from,
                                    const std::string& to,
                                    const AuctionTick& tick) = 0;

  virtual TickReply SendCounterOffer(const std::string& from,
                                     const std::string& to,
                                     const CounterOffer& counter) = 0;

  /// Sends award/decline feedback; returns the one-way delivery time
  /// (0 when the message was lost).
  virtual double SendAwards(const std::string& from, const std::string& to,
                            const AwardBatch& batch) = 0;

  /// Closes a negotiation round: advances the virtual clock by the
  /// round's critical path as decided by the caller's deadline policy.
  virtual void AdvanceRound(double ms) = 0;

  /// The underlying accounting network (message/byte totals, clock).
  virtual SimNetwork* network() = 0;

  /// Attaches (or detaches, with nulls) tracing and metrics. Transports
  /// that implement it emit per-message instants and per-node
  /// message/byte counters; the default is a no-op so minimal transports
  /// stay trivial. Decorators forward to their inner transport.
  virtual void SetObservability(obs::Tracer* tracer,
                                obs::MetricsRegistry* metrics) {
    (void)tracer;
    (void)metrics;
  }
};

/// Shared observability plumbing for concrete transports: cached
/// per-node instrument handles (so per-message accounting is four
/// relaxed atomic adds, not four registry lookups) plus the send[kind]
/// trace instant. Thread-safe; the no-observability fast path is two
/// relaxed loads.
class TransportObservability {
 public:
  /// Attaches (or detaches, with nulls) a tracer/metrics registry and
  /// drops handles minted from any previous registry.
  void Set(obs::Tracer* tracer, obs::MetricsRegistry* metrics);

  /// Counts one accounted message on both endpoints' counters and, when
  /// tracing, emits a send[kind] instant carrying the message size.
  void ObserveSend(const std::string& from, const std::string& to,
                   int64_t bytes, const char* kind, obs::SpanRef parent);

  /// The attached tracer (null when detached) — transports use it to
  /// stamp outgoing frames with their clock and to record clock-offset
  /// samples from reply headers.
  obs::Tracer* tracer() const {
    return tracer_.load(std::memory_order_relaxed);
  }

 private:
  struct NodeIo {
    obs::Counter* msgs_sent = nullptr;
    obs::Counter* bytes_sent = nullptr;
    obs::Counter* msgs_recv = nullptr;
    obs::Counter* bytes_recv = nullptr;
  };
  NodeIo* io(const std::string& node);

  /// Atomics so the per-message fast path (no observability attached)
  /// is two relaxed loads — no lock, nothing formatted.
  std::atomic<obs::Tracer*> tracer_{nullptr};
  std::atomic<obs::MetricsRegistry*> metrics_{nullptr};
  std::mutex io_mu_;  // guards io_ (worker threads resolve handles)
  std::map<std::string, NodeIo> io_;
};

struct InProcessTransportOptions {
  /// Dispatch the seller handlers of one RFB fan-out on worker threads,
  /// so a round's wall-clock cost is the slowest seller, not the sum.
  bool parallel = true;
  /// Worker-thread cap per fan-out; 0 = std::thread::hardware_concurrency.
  size_t max_threads = 0;
};

/// Transport over direct in-process handler calls: the federation's
/// default. Offer generation for one RFB round runs on a per-round
/// std::thread pool (unless `parallel` is off); all SimNetwork accounting
/// happens on the dispatching thread, so message/byte totals are
/// identical in serial and parallel mode.
class InProcessTransport : public Transport {
 public:
  explicit InProcessTransport(SimNetwork* network,
                              InProcessTransportOptions options = {});

  void set_options(const InProcessTransportOptions& options) {
    options_ = options;
  }
  const InProcessTransportOptions& options() const { return options_; }

  void Register(NodeEndpoint* endpoint) override;
  NodeEndpoint* endpoint(const std::string& name) const override;
  std::vector<std::string> NodeNames() const override;

  std::vector<OfferReply> BroadcastRfb(const std::string& from,
                                       const Rfb& rfb,
                                       const std::vector<std::string>& to,
                                       const char* rfb_kind = "rfb",
                                       const char* offer_kind =
                                           "offer") override;
  TickReply SendAuctionTick(const std::string& from, const std::string& to,
                            const AuctionTick& tick) override;
  TickReply SendCounterOffer(const std::string& from, const std::string& to,
                             const CounterOffer& counter) override;
  double SendAwards(const std::string& from, const std::string& to,
                    const AwardBatch& batch) override;
  void AdvanceRound(double ms) override;
  SimNetwork* network() override { return network_; }
  void SetObservability(obs::Tracer* tracer,
                        obs::MetricsRegistry* metrics) override;

 private:
  SimNetwork* network_;
  InProcessTransportOptions options_;
  mutable std::mutex mu_;  // guards endpoints_ (registration vs lookup)
  std::map<std::string, NodeEndpoint*> endpoints_;
  TransportObservability obs_;
};

}  // namespace qtrade

#endif  // QTRADE_NET_TRANSPORT_H_
