// Transport over real POSIX sockets: the federation's wire for true
// multi-process deployments. Local endpoints registered on this
// transport are dispatched in-process exactly like InProcessTransport
// (a node's loopback traffic never crosses the network); peers added
// with AddPeer are reached over TCP speaking the serde/ codec frames
// against a NodeServer (src/server/node_server.h) on the far side.
//
// Semantics match InProcessTransport contract-for-contract so the same
// buyer/seller engines (and the FaultyTransport decorator and
// observability hooks) run unchanged over either:
//   - BroadcastRfb fans out in parallel and returns one OfferReply per
//     target, in target order, stamped with simulated arrival times;
//     all SimNetwork accounting happens on the dispatching thread.
//   - A connect failure, read timeout or malformed reply marks the
//     reply `dropped` — feeding the buyer's existing offer_timeout_ms
//     degradation path — rather than erroring the negotiation.
//   - Byte accounting is fed by the *actual* encoded frame sizes, which
//     (by the WireBytes() delegation in net/wire.cc) equal the sizes the
//     in-process transport charges, so byte totals agree across
//     transports for identical negotiations.
//
// Connection model: one pooled connection per peer, created lazily and
// reused across negotiation rounds; a stale pooled connection (peer
// restarted) is retried once with a fresh connect. RPCs on one peer
// serialize on its connection; fan-out to different peers is parallel.
#ifndef QTRADE_NET_TCP_TRANSPORT_H_
#define QTRADE_NET_TCP_TRANSPORT_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "net/transport.h"

namespace qtrade {

/// Address of a remote seller daemon (see examples/qtrade_node.cpp).
struct RemotePeer {
  std::string name;  // federation node name
  std::string host;
  uint16_t port = 0;
};

struct TcpTransportOptions {
  /// Bounded connect wait per peer; expiry marks replies dropped.
  double connect_timeout_ms = 5000;
  /// Bounded wait for each reply frame; 0 = wait forever. The
  /// QueryTradingOptimizer facade maps QtOptions::offer_timeout_ms here
  /// when unset, so a slow daemon degrades the same way a slow simulated
  /// seller does.
  double read_timeout_ms = 30000;
  /// Fan RFB handlers/RPCs out on worker threads (matching
  /// InProcessTransportOptions::parallel).
  bool parallel = true;
  size_t max_threads = 0;  // 0 = hardware_concurrency
};

class TcpTransport : public Transport {
 public:
  explicit TcpTransport(SimNetwork* network, TcpTransportOptions options = {});
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  /// Makes `name` reachable at host:port. Replaces any previous address
  /// (the old pooled connection is closed).
  void AddPeer(const std::string& name, const std::string& host,
               uint16_t port);
  void AddPeer(const RemotePeer& peer) {
    AddPeer(peer.name, peer.host, peer.port);
  }

  /// Drops the pooled connection to `name` (it re-opens on next use).
  void DisconnectPeer(const std::string& name);

  /// Liveness probe: ping/ack round-trip to a named peer.
  Status PingPeer(const std::string& name);

  /// Asks a peer daemon to stop serving (kShutdown frame). Best-effort.
  Status ShutdownPeer(const std::string& name);

  /// Ships a previously sold answer from a remote seller (the kRfb
  /// negotiation's delivery leg); accounted as "data" traffic.
  Result<RowSet> FetchOffer(const std::string& peer,
                            const std::string& offer_id);

  // Transport:
  void Register(NodeEndpoint* endpoint) override;
  NodeEndpoint* endpoint(const std::string& name) const override;
  /// Local endpoints plus TCP peers, sorted (stable seller ordering).
  std::vector<std::string> NodeNames() const override;
  std::vector<OfferReply> BroadcastRfb(const std::string& from,
                                       const Rfb& rfb,
                                       const std::vector<std::string>& to,
                                       const char* rfb_kind = "rfb",
                                       const char* offer_kind =
                                           "offer") override;
  TickReply SendAuctionTick(const std::string& from, const std::string& to,
                            const AuctionTick& tick) override;
  TickReply SendCounterOffer(const std::string& from, const std::string& to,
                             const CounterOffer& counter) override;
  double SendAwards(const std::string& from, const std::string& to,
                    const AwardBatch& batch) override;
  void AdvanceRound(double ms) override;
  SimNetwork* network() override { return network_; }
  void SetObservability(obs::Tracer* tracer,
                        obs::MetricsRegistry* metrics) override;

 private:
  struct PeerState {
    std::string host;
    uint16_t port = 0;
    std::mutex mu;  // serializes RPCs on the pooled connection
    int fd = -1;    // -1 = not connected
  };

  PeerState* peer(const std::string& name) const;

  /// One framed request/reply exchange on the peer's pooled connection.
  /// Reconnects once when a reused connection turns out stale. Returns
  /// the raw reply frame (header-validated; callers decode).
  Result<std::string> RoundTrip(PeerState* peer, const std::string& frame);

  /// Encodes + round-trips a tick-style request and decodes the
  /// TickReply, with accounting under `kind`.
  TickReply TickRpc(const std::string& from, const std::string& to,
                    const std::string& frame, int64_t wire_bytes,
                    const char* kind);

  SimNetwork* network_;
  TcpTransportOptions options_;
  mutable std::mutex mu_;  // guards endpoints_ and peers_ map shape
  std::map<std::string, NodeEndpoint*> endpoints_;
  std::map<std::string, std::unique_ptr<PeerState>> peers_;
  TransportObservability obs_;
};

}  // namespace qtrade

#endif  // QTRADE_NET_TCP_TRANSPORT_H_
