// Transport over real POSIX sockets: the federation's wire for true
// multi-process deployments. Local endpoints registered on this
// transport are dispatched in-process exactly like InProcessTransport
// (a node's loopback traffic never crosses the network); peers added
// with AddPeer are reached over TCP speaking the serde/ codec frames
// against a NodeServer (src/server/node_server.h) on the far side.
//
// Semantics match InProcessTransport contract-for-contract so the same
// buyer/seller engines (and the FaultyTransport decorator and
// observability hooks) run unchanged over either:
//   - BroadcastRfb fans out in parallel and returns one OfferReply per
//     target, in target order, stamped with simulated arrival times;
//     all SimNetwork accounting happens on the dispatching thread.
//   - A connect failure, read timeout or malformed reply marks the
//     reply `dropped` — feeding the buyer's existing offer_timeout_ms
//     degradation path — rather than erroring the negotiation.
//   - Byte accounting is fed by the *actual* encoded frame sizes, which
//     (by the WireBytes() delegation in net/wire.cc) equal the sizes the
//     in-process transport charges, so byte totals agree across
//     transports for identical negotiations.
//
// Connection model (see DESIGN.md, "Concurrent negotiation"): one
// pooled connection per peer, created lazily and reused across
// negotiation rounds. Frames for *different negotiations* interleave
// freely on that one connection: each request carries its negotiation
// id in the frame-header channel, the server echoes it on the reply,
// and the client demultiplexes arriving replies by channel — one
// caller at a time acts as the connection's reader (leader) and stashes
// other channels' replies for their waiting threads (followers). A
// stale pooled connection (peer restarted) is retried once with a
// fresh connect; a reply timeout drops the connection, exactly like
// the serial transport, because a late reply left in the stream could
// be mistaken for the answer to the channel's next request.
#ifndef QTRADE_NET_TCP_TRANSPORT_H_
#define QTRADE_NET_TCP_TRANSPORT_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "net/transport.h"

namespace qtrade {

/// Address of a remote seller daemon (see examples/qtrade_node.cpp).
struct RemotePeer {
  std::string name;  // federation node name
  std::string host;
  uint16_t port = 0;
};

struct TcpTransportOptions {
  /// Bounded connect wait per peer; expiry marks replies dropped.
  double connect_timeout_ms = 5000;
  /// Bounded wait for each reply frame; 0 = wait forever. The
  /// QueryTradingOptimizer facade maps QtOptions::offer_timeout_ms here
  /// when unset, so a slow daemon degrades the same way a slow simulated
  /// seller does.
  double read_timeout_ms = 30000;
  /// Fan RFB handlers/RPCs out on worker threads (matching
  /// InProcessTransportOptions::parallel).
  bool parallel = true;
  size_t max_threads = 0;  // 0 = hardware_concurrency
};

class TcpTransport : public Transport {
 public:
  explicit TcpTransport(SimNetwork* network, TcpTransportOptions options = {});
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  /// Makes `name` reachable at host:port. Replaces any previous address
  /// (the old pooled connection is closed).
  void AddPeer(const std::string& name, const std::string& host,
               uint16_t port);
  void AddPeer(const RemotePeer& peer) {
    AddPeer(peer.name, peer.host, peer.port);
  }

  /// Drops the pooled connection to `name` (it re-opens on next use).
  /// RPCs in flight on it fail over to their reconnect retry.
  void DisconnectPeer(const std::string& name);

  /// Liveness probe: ping/ack round-trip to a named peer.
  Status PingPeer(const std::string& name);

  /// Live introspection: asks the peer daemon for its kStatsRequest
  /// snapshot (server counters, in-flight negotiations, offer-cache and
  /// dp-pool state, flattened metrics). Safe to call while negotiations
  /// are in flight on the same pooled connection — the request rides its
  /// own channel like any other interleaved RPC.
  Result<StatsSnapshot> StatsPeer(const std::string& name);

  /// Asks a peer daemon to stop serving (kShutdown frame). Best-effort.
  Status ShutdownPeer(const std::string& name);

  /// Ships a previously sold answer from a remote seller (the kRfb
  /// negotiation's delivery leg); accounted as "data" traffic. Accepts
  /// both reply shapes: a classic single kRowSet, or a kRowChunk stream
  /// closed by kRowStreamEnd (a daemon started with chunk_rows > 0) —
  /// chunks are reassembled in sequence order and verified against the
  /// stream-end totals, so the returned RowSet is byte-identical either
  /// way. `stats`, when non-null, receives the measured delivery
  /// (time-to-first-row, chunk/row/byte totals).
  Result<RowSet> FetchOffer(const std::string& peer,
                            const std::string& offer_id,
                            DeliveryStats* stats = nullptr);

  // Transport:
  void Register(NodeEndpoint* endpoint) override;
  NodeEndpoint* endpoint(const std::string& name) const override;
  /// Local endpoints plus TCP peers, sorted (stable seller ordering).
  std::vector<std::string> NodeNames() const override;
  std::vector<OfferReply> BroadcastRfb(const std::string& from,
                                       const Rfb& rfb,
                                       const std::vector<std::string>& to,
                                       const char* rfb_kind = "rfb",
                                       const char* offer_kind =
                                           "offer") override;
  TickReply SendAuctionTick(const std::string& from, const std::string& to,
                            const AuctionTick& tick) override;
  TickReply SendCounterOffer(const std::string& from, const std::string& to,
                             const CounterOffer& counter) override;
  double SendAwards(const std::string& from, const std::string& to,
                    const AwardBatch& batch) override;
  void AdvanceRound(double ms) override;
  SimNetwork* network() override { return network_; }
  void SetObservability(obs::Tracer* tracer,
                        obs::MetricsRegistry* metrics) override;

 private:
  struct PeerState {
    std::string host;
    uint16_t port = 0;
    std::mutex mu;  // guards everything below; dropped while reading
    std::condition_variable cv;
    int fd = -1;    // -1 = not connected
    /// Bumped on every teardown; a waiter whose generation no longer
    /// matches knows its connection died and reads `fail_status`.
    uint64_t generation = 0;
    /// True while some RPC thread (the leader) is blocked reading the
    /// next frame off `fd` with `mu` released.
    bool reader_active = false;
    /// Channel -> count of RPCs awaiting that channel's reply. Replies
    /// arriving for channels nobody waits on (a waiter timed out and
    /// the connection survived a race) are dropped, not stashed.
    std::map<uint32_t, int> waiting;
    /// Replies the leader read that belong to other channels, in
    /// arrival order per channel. A streamed delivery (kRowChunk...
    /// kRowStreamEnd) can queue several frames for one channel while
    /// its waiter is off the lock decoding the previous chunk.
    std::map<uint32_t, std::deque<std::string>> inbox;
    /// Why the last teardown happened (surfaced to stranded waiters).
    Status fail_status = Status::OK();
  };

  PeerState* peer(const std::string& name) const;

  /// One framed request/reply exchange on the peer's pooled connection,
  /// demultiplexed by `channel` (the frame's header channel — the
  /// negotiation id). Concurrent calls for different channels interleave
  /// on one connection. Reconnects once when a reused connection turns
  /// out stale. Returns the raw reply frame (header-validated; callers
  /// decode).
  Result<std::string> RoundTrip(PeerState* peer, const std::string& frame,
                                uint32_t channel);

  /// Waits (mu held via `lock`) until the reply for `channel` arrives on
  /// the connection of generation `gen`, reading frames off the socket
  /// when no other thread is. Returns the reply frame, or the teardown/
  /// timeout status.
  Result<std::string> AwaitReply(PeerState* peer,
                                 std::unique_lock<std::mutex>& lock,
                                 uint32_t channel, uint64_t gen);

  /// Kills the pooled connection (mu held): closes or shuts down the fd,
  /// bumps the generation, clears stashed replies, wakes every waiter.
  void TearDownLocked(PeerState* peer, Status why);

  /// Encodes + round-trips a tick-style request and decodes the
  /// TickReply, with accounting under `kind`.
  TickReply TickRpc(const std::string& from, const std::string& to,
                    const std::string& frame, int64_t wire_bytes,
                    uint32_t channel, const char* kind);

  /// Stamps an outgoing envelope's trace context with the local tracer
  /// clock (the t0 of the NTP-style offset exchange). Identity when no
  /// tracer is attached, so untraced frames stay byte-stable.
  WireTrace StampedTrace(WireTrace trace) const;

  /// Turns a v3 reply header (peer clock stamp + our echoed send time)
  /// into a clock_sample trace instant: offset_us ≈ how far the peer's
  /// trace clock runs ahead of ours, rtt_us the raw round trip.
  /// tools/trace_merge.py consumes these to align per-node timelines.
  void RecordClockSample(const std::string& peer_name,
                         const std::string& reply_frame);

  SimNetwork* network_;
  TcpTransportOptions options_;
  mutable std::mutex mu_;  // guards endpoints_ and peers_ map shape
  std::map<std::string, NodeEndpoint*> endpoints_;
  std::map<std::string, std::unique_ptr<PeerState>> peers_;
  TransportObservability obs_;
};

}  // namespace qtrade

#endif  // QTRADE_NET_TCP_TRANSPORT_H_
