// WireBytes() delegation: every envelope reports the exact size of its
// sealed codec frame, so simulated byte accounting and the bytes
// TcpTransport actually ships cannot drift apart (codec_test.cc pins
// Encode(msg).size() == msg.WireBytes() per envelope).
#include "net/wire.h"

#include <atomic>

#include "serde/codec.h"

namespace qtrade {

uint32_t AllocateNegotiationId() {
  static std::atomic<uint32_t> counter{0};
  // Maps onto [1, kMaxNegotiationId]: never the "no negotiation" channel
  // 0, never a value the codec's hostile-id guard would reject.
  return counter.fetch_add(1, std::memory_order_relaxed) %
             serde::kMaxNegotiationId +
         1;
}

int64_t Rfb::WireBytes() const {
  return serde::kFrameHeaderBytes + serde::RfbPayloadSize(*this);
}

int64_t OfferWireBytes(const Offer& offer) {
  // A lone offer travels as a kTickReply frame: presence byte + payload.
  return serde::kFrameHeaderBytes + 1 + serde::OfferPayloadSize(offer);
}

int64_t OfferBatchWireBytes(const std::vector<Offer>& offers) {
  serde::OfferBatch batch;
  int64_t bytes = serde::kFrameHeaderBytes +
                  serde::OfferBatchPayloadSize(batch) /* empty envelope */;
  for (const Offer& offer : offers) bytes += serde::OfferPayloadSize(offer);
  return bytes;
}

int64_t TickHoldWireBytes() {
  return serde::kFrameHeaderBytes + 1 /* presence byte: no offer */;
}

int64_t AwardBatch::WireBytes() const {
  if (kLegacyTickWireBytes) {
    return 64 + 48 * static_cast<int64_t>(awards.size());
  }
  return serde::kFrameHeaderBytes + serde::AwardBatchPayloadSize(*this);
}

int64_t AuctionTick::WireBytes() const {
  if (kLegacyTickWireBytes) return 64;
  return serde::kFrameHeaderBytes + serde::AuctionTickPayloadSize(*this);
}

int64_t CounterOffer::WireBytes() const {
  if (kLegacyTickWireBytes) return 96;
  return serde::kFrameHeaderBytes + serde::CounterOfferPayloadSize(*this);
}

int64_t StatsSnapshot::WireBytes() const {
  return serde::kFrameHeaderBytes + serde::StatsSnapshotPayloadSize(*this);
}

}  // namespace qtrade
