#include "net/wire.h"

#include "sql/ast.h"

namespace qtrade {

int64_t OfferWireBytes(const Offer& offer) {
  // 128 covers the framing plus the fixed-width §3.1 property vector and
  // row_bytes/kind fields; everything variable-length is added per field.
  int64_t bytes = 128;
  bytes += static_cast<int64_t>(offer.offer_id.size() +
                                offer.seller.size() + offer.rfb_id.size());
  bytes += static_cast<int64_t>(sql::ToSql(offer.query).size());
  for (const auto& cov : offer.coverage) {
    bytes += 16 + static_cast<int64_t>(cov.alias.size() + cov.table.size()) +
             24 * static_cast<int64_t>(cov.partitions.size());
  }
  return bytes;
}

int64_t OfferBatchWireBytes(const std::vector<Offer>& offers) {
  int64_t bytes = 32;  // decline / batch envelope
  for (const auto& offer : offers) bytes += OfferWireBytes(offer);
  return bytes;
}

}  // namespace qtrade
