#include "net/resilient.h"

#include <algorithm>
#include <cmath>
#include <functional>

namespace qtrade {

ResilientTransport::ResilientTransport(Transport* inner,
                                       ResilienceOptions options)
    : inner_(inner), options_(options) {}

void ResilientTransport::Register(NodeEndpoint* endpoint) {
  inner_->Register(endpoint);
}

NodeEndpoint* ResilientTransport::endpoint(const std::string& name) const {
  return inner_->endpoint(name);
}

std::vector<std::string> ResilientTransport::NodeNames() const {
  return inner_->NodeNames();
}

void ResilientTransport::AdvanceRound(double ms) {
  inner_->AdvanceRound(ms);
}

SimNetwork* ResilientTransport::network() { return inner_->network(); }

void ResilientTransport::SetObservability(obs::Tracer* tracer,
                                          obs::MetricsRegistry* metrics) {
  tracer_.store(tracer, std::memory_order_relaxed);
  metrics_.store(metrics, std::memory_order_relaxed);
  inner_->SetObservability(tracer, metrics);
}

ResilienceStats ResilientTransport::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::string ResilientTransport::BreakerState(const std::string& peer) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = health_.find(peer);
  if (it == health_.end()) return "closed";
  switch (it->second.state) {
    case Circuit::kClosed:
      return "closed";
    case Circuit::kOpen:
      return "open";
    case Circuit::kHalfOpen:
      return "half_open";
  }
  return "closed";
}

double ResilientTransport::VirtualNowMs() const {
  SimNetwork* network = inner_->network();
  return network != nullptr ? network->now_ms() : 0;
}

void ResilientTransport::ObserveRetry(const char* kind,
                                      const std::string& node,
                                      obs::SpanRef parent) {
  if (obs::MetricsRegistry* metrics =
          metrics_.load(std::memory_order_relaxed)) {
    metrics->counter("retry." + node + "." + kind)->Increment();
  }
  obs::Tracer* tracer = tracer_.load(std::memory_order_relaxed);
  if (obs::Tracer::Active(tracer)) {
    obs::Span instant =
        tracer->StartInstant(std::string("retry[") + kind + "]", parent);
    instant.Node(node);
  }
}

void ResilientTransport::ObserveBreaker(const char* event,
                                        const std::string& node,
                                        obs::SpanRef parent) {
  if (obs::MetricsRegistry* metrics =
          metrics_.load(std::memory_order_relaxed)) {
    metrics->counter("breaker." + node + "." + event)->Increment();
  }
  obs::Tracer* tracer = tracer_.load(std::memory_order_relaxed);
  if (obs::Tracer::Active(tracer)) {
    obs::Span instant =
        tracer->StartInstant(std::string("breaker[") + event + "]", parent);
    instant.Node(node);
  }
}

bool ResilientTransport::Admit(const std::string& from,
                               const std::string& peer,
                               obs::SpanRef parent) {
  if (!options_.enabled || peer == from) return true;
  const double now = VirtualNowMs();
  const char* event = nullptr;
  bool admitted = true;
  {
    std::lock_guard<std::mutex> lock(mu_);
    PeerHealth& health = health_[peer];
    switch (health.state) {
      case Circuit::kClosed:
        break;
      case Circuit::kHalfOpen:
        // A probe is already in flight (or its outcome has not been fed
        // back yet); further traffic may ride along — it carries the
        // same risk and the same information.
        break;
      case Circuit::kOpen:
        if (now - health.opened_at_ms >= options_.breaker.open_ms) {
          health.state = Circuit::kHalfOpen;
          ++stats_.breaker_probes;
          event = "probe";
        } else {
          ++stats_.breaker_short_circuits;
          event = "short_circuit";
          admitted = false;
        }
        break;
    }
  }
  if (event != nullptr) ObserveBreaker(event, peer, parent);
  return admitted;
}

bool ResilientTransport::WouldShortCircuit(const std::string& from,
                                           const std::string& peer) const {
  if (!options_.enabled || peer == from) return false;
  const double now = VirtualNowMs();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = health_.find(peer);
  if (it == health_.end() || it->second.state != Circuit::kOpen) {
    return false;
  }
  return now - it->second.opened_at_ms < options_.breaker.open_ms;
}

void ResilientTransport::RecordOutcome(const std::string& from,
                                       const std::string& peer,
                                       bool success, obs::SpanRef parent) {
  if (!options_.enabled || peer == from) return;
  const double now = VirtualNowMs();
  const char* event = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    PeerHealth& health = health_[peer];
    if (success) {
      health.consecutive_failures = 0;
      if (health.state != Circuit::kClosed) {
        health.state = Circuit::kClosed;
        ++stats_.breaker_closes;
        event = "close";
      }
    } else {
      ++health.consecutive_failures;
      const bool probe_failed = health.state == Circuit::kHalfOpen;
      if (probe_failed || (health.state == Circuit::kClosed &&
                           health.consecutive_failures >=
                               options_.breaker.trip_after)) {
        health.state = Circuit::kOpen;
        health.opened_at_ms = now;
        ++stats_.breaker_trips;
        event = "trip";
      }
    }
  }
  if (event != nullptr) ObserveBreaker(event, peer, parent);
}

double ResilientTransport::BackoffMs(const std::string& key,
                                     int attempt) const {
  const RetryPolicy& policy = options_.retry;
  double backoff =
      policy.base_backoff_ms * std::pow(2.0, std::max(0, attempt - 2));
  backoff = std::min(backoff, policy.max_backoff_ms);
  if (policy.jitter <= 0) return backoff;
  // Keyed per (message, attempt): order-independent across peers and
  // identical across runs and transports.
  const uint64_t h =
      std::hash<std::string>{}(key + "#" + std::to_string(attempt));
  Rng rng(options_.seed * 0x9E3779B97F4A7C15ULL ^ h);
  const double unit = rng.UniformReal(-1.0, 1.0);
  return std::max(0.0, backoff * (1.0 + policy.jitter * unit));
}

std::vector<OfferReply> ResilientTransport::BroadcastRfb(
    const std::string& from, const Rfb& rfb,
    const std::vector<std::string>& to, const char* rfb_kind,
    const char* offer_kind) {
  if (!options_.enabled) {
    return inner_->BroadcastRfb(from, rfb, to, rfb_kind, offer_kind);
  }
  const obs::SpanRef rfb_span{rfb.trace_parent, rfb.trace_round};

  // Breaker gate: open-circuit peers are not contacted at all; the buyer
  // sees a synthesized dropped reply and degrades exactly as if the
  // message had been lost (no bytes charged — nothing was sent).
  std::vector<std::string> admitted;
  std::vector<OfferReply> suppressed;
  admitted.reserve(to.size());
  for (const std::string& name : to) {
    if (!Admit(from, name, rfb_span)) {
      OfferReply reply;
      reply.seller = name;
      reply.dropped = true;
      suppressed.push_back(std::move(reply));
      continue;
    }
    admitted.push_back(name);
  }

  std::vector<OfferReply> out;
  if (!admitted.empty()) {
    out = inner_->BroadcastRfb(from, rfb, admitted, rfb_kind, offer_kind);
  }

  // One primary (non-duplicate) reply per admitted target; duplicates
  // only ever get appended, so positions stay stable.
  std::map<std::string, size_t> primary;
  for (size_t i = 0; i < out.size(); ++i) {
    if (!out[i].duplicated) primary[out[i].seller] = i;
  }
  for (const auto& [seller, index] : primary) {
    // A decline (ok=false) means the peer answered: breaker success.
    RecordOutcome(from, seller, !out[index].dropped, rfb_span);
  }

  std::vector<std::string> exhausted;
  for (int attempt = 2; attempt <= options_.retry.max_attempts; ++attempt) {
    std::vector<std::string> retry_to;
    for (const auto& [seller, index] : primary) {
      if (seller == from || !out[index].dropped) continue;
      if (!Admit(from, seller, rfb_span)) continue;  // tripped meanwhile
      retry_to.push_back(seller);
    }
    if (retry_to.empty()) break;
    for (const std::string& seller : retry_to) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.rfb_retries;
      }
      ObserveRetry(rfb_kind, seller, rfb_span);
    }
    // Re-broadcasting the same RFB is idempotent: sellers derive offer
    // ids deterministically from (rfb_id, seq), so a retried reply
    // carries the same commodity the lost one did.
    std::vector<OfferReply> again =
        inner_->BroadcastRfb(from, rfb, retry_to, rfb_kind, offer_kind);
    std::vector<OfferReply> extra_duplicates;
    for (OfferReply& reply : again) {
      auto it = primary.find(reply.seller);
      if (it == primary.end()) continue;
      const double wait =
          BackoffMs(rfb.rfb_id + "|" + reply.seller, attempt);
      const double previous_arrival = out[it->second].arrival_ms;
      if (reply.duplicated) {
        reply.arrival_ms += previous_arrival + wait;
        extra_duplicates.push_back(std::move(reply));
        continue;
      }
      // The retried reply lands after the original attempt's (lost)
      // round trip plus the backoff wait — all simulated time, feeding
      // the buyer's deadline policy.
      reply.arrival_ms += previous_arrival + wait;
      RecordOutcome(from, reply.seller, !reply.dropped, rfb_span);
      out[it->second] = std::move(reply);
    }
    for (OfferReply& duplicate : extra_duplicates) {
      out.push_back(std::move(duplicate));
    }
  }
  if (options_.retry.max_attempts > 1) {
    int64_t still_dropped = 0;
    for (const auto& [seller, index] : primary) {
      if (seller != from && out[index].dropped) ++still_dropped;
    }
    if (still_dropped > 0) {
      std::lock_guard<std::mutex> lock(mu_);
      stats_.retries_exhausted += still_dropped;
    }
  }
  for (OfferReply& reply : suppressed) {
    out.push_back(std::move(reply));
  }
  return out;
}

template <typename SendFn>
TickReply ResilientTransport::RetryTick(const char* kind,
                                        const std::string& key,
                                        const std::string& from,
                                        const std::string& to,
                                        int64_t* retry_counter,
                                        const SendFn& send) {
  if (!Admit(from, to, {})) {
    TickReply reply;
    reply.dropped = true;
    return reply;
  }
  TickReply reply = send();
  if (to == from) return reply;
  RecordOutcome(from, to, !reply.dropped, {});
  double elapsed = reply.elapsed_ms;
  for (int attempt = 2;
       reply.dropped && attempt <= options_.retry.max_attempts; ++attempt) {
    if (!Admit(from, to, {})) break;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++*retry_counter;
    }
    ObserveRetry(kind, to, {});
    const double wait = BackoffMs(key, attempt);
    TickReply again = send();
    RecordOutcome(from, to, !again.dropped, {});
    elapsed += wait + again.elapsed_ms;
    reply = std::move(again);
    reply.elapsed_ms = elapsed;
  }
  if (reply.dropped && options_.retry.max_attempts > 1) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.retries_exhausted;
  }
  return reply;
}

TickReply ResilientTransport::SendAuctionTick(const std::string& from,
                                              const std::string& to,
                                              const AuctionTick& tick) {
  if (!options_.enabled) return inner_->SendAuctionTick(from, to, tick);
  const std::string key =
      "auction|" + tick.rfb_id + "|" + tick.signature + "|" + to;
  return RetryTick("auction_tick", key, from, to, &stats_.tick_retries,
                   [&] { return inner_->SendAuctionTick(from, to, tick); });
}

TickReply ResilientTransport::SendCounterOffer(const std::string& from,
                                               const std::string& to,
                                               const CounterOffer& counter) {
  if (!options_.enabled) return inner_->SendCounterOffer(from, to, counter);
  const std::string key =
      "bargain|" + counter.rfb_id + "|" + counter.signature + "|" + to;
  return RetryTick("counter_offer", key, from, to, &stats_.tick_retries,
                   [&] {
                     return inner_->SendCounterOffer(from, to, counter);
                   });
}

double ResilientTransport::SendAwards(const std::string& from,
                                      const std::string& to,
                                      const AwardBatch& batch) {
  // No reply means no retry signal; but a peer behind an open circuit is
  // presumed dead, so the (unobservable anyway) award is suppressed
  // rather than charged to the network.
  if (WouldShortCircuit(from, to)) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.breaker_short_circuits;
    }
    ObserveBreaker("short_circuit", to, {});
    return 0;
  }
  return inner_->SendAwards(from, to, batch);
}

}  // namespace qtrade
