// Typed wire envelopes of the trading negotiation, owned by the network
// layer so any Transport implementation (in-process, faulty, sockets
// later) can carry them. Queries travel as SQL text (the commodity
// description); offers carry the §3.1 property vector.
//
// Every envelope has a WireBytes() estimate used by the simulated
// network's byte accounting; the estimates track what a real
// serialization of the struct would ship (all string fields plus a fixed
// framing overhead), so message sizes respond to content.
#ifndef QTRADE_NET_WIRE_H_
#define QTRADE_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "opt/offer.h"

namespace qtrade {

/// Fixed per-envelope framing overhead assumed by the WireBytes()
/// estimates (message type tag, lengths, checksums).
inline constexpr int64_t kWireFramingBytes = 64;

/// Pre-observability behavior: the negotiation tick/award envelopes
/// reported hard-coded sizes (AuctionTick 64, CounterOffer 96, AwardBatch
/// 64 + 48/award) regardless of payload, so their byte metrics did not
/// respond to content. Flip to true only to reproduce byte totals from
/// benches recorded before the content-based estimates landed.
inline constexpr bool kLegacyTickWireBytes = false;

/// Request for bids (paper Fig. 2, step B2).
struct Rfb {
  std::string rfb_id;
  std::string buyer;
  std::string sql;           // the traded query
  double reserve_value = -1; // buyer's strategic value estimate; <0 unknown
  /// May the receiving seller subcontract missing fragments from its own
  /// peers (§3.5)? Subcontract RFBs clear this, bounding the depth at 1.
  bool allow_subcontract = true;
  /// Trace context (like a W3C traceparent header): the buyer's
  /// rfb_broadcast span and negotiation round, so seller-side spans nest
  /// under the broadcast that caused them. 0/-1 = untraced. Excluded
  /// from WireBytes() so byte metrics are identical with tracing on or
  /// off.
  uint64_t trace_parent = 0;
  int32_t trace_round = -1;

  /// Approximate wire size: all serialized fields (rfb_id, buyer node
  /// name, SQL text, reserve value, subcontract flag) plus framing.
  int64_t WireBytes() const {
    return static_cast<int64_t>(rfb_id.size() + buyer.size() + sql.size()) +
           8 /* reserve_value */ + 1 /* allow_subcontract */ +
           kWireFramingBytes;
  }
};

/// Approximate wire size of one offer inside an offer-batch reply:
/// identity strings, the offered SQL, the coverage list and the fixed
/// §3.1 property vector.
int64_t OfferWireBytes(const Offer& offer);

/// Wire size of a whole offer-batch reply (the decline envelope plus
/// each offer); the symmetric counterpart of Rfb::WireBytes().
int64_t OfferBatchWireBytes(const std::vector<Offer>& offers);

/// Award notification (winning offers; Fig. 2 step B3/S3).
struct Award {
  std::string rfb_id;
  std::string offer_id;
};

/// One award message: the buyer's winning-offer list for a seller plus
/// the losing offer ids (strategy feedback).
struct AwardBatch {
  std::vector<Award> awards;
  std::vector<std::string> lost_offer_ids;

  /// Envelope plus each award's id strings and each losing offer id
  /// (previously a hard-coded 64 + 48/award that ignored id lengths and
  /// the loser list entirely).
  int64_t WireBytes() const {
    if (kLegacyTickWireBytes) {
      return 64 + 48 * static_cast<int64_t>(awards.size());
    }
    int64_t bytes = kWireFramingBytes;
    for (const auto& award : awards) {
      bytes += 8 + static_cast<int64_t>(award.rfb_id.size() +
                                        award.offer_id.size());
    }
    for (const auto& id : lost_offer_ids) {
      bytes += 8 + static_cast<int64_t>(id.size());
    }
    return bytes;
  }
};

/// Auction-round announcement: current best score among the offers of
/// one traded query that span the same alias set (only those are
/// price-comparable).
struct AuctionTick {
  std::string rfb_id;
  std::string signature;  // Offer::CoverageSignature() of the group
  double best_score = 0;  // score of the currently winning offer

  /// Identity strings + score + framing (previously a hard-coded 64).
  int64_t WireBytes() const {
    if (kLegacyTickWireBytes) return 64;
    return static_cast<int64_t>(rfb_id.size() + signature.size()) +
           8 /* best_score */ + kWireFramingBytes;
  }
};

/// Bargaining counter-offer: the buyer pushes the best bidder of one
/// (rfb, signature) group toward `target_value`.
struct CounterOffer {
  std::string rfb_id;
  std::string signature;
  double target_value = 0;

  /// Identity strings + target + framing (previously a hard-coded 96).
  int64_t WireBytes() const {
    if (kLegacyTickWireBytes) return 96;
    return static_cast<int64_t>(rfb_id.size() + signature.size()) +
           8 /* target_value */ + kWireFramingBytes;
  }
};

/// Accounting for one optimization run.
struct TradeMetrics {
  int iterations = 0;
  int64_t rfbs_sent = 0;
  int64_t offers_received = 0;
  int64_t awards_sent = 0;
  int64_t messages = 0;
  int64_t bytes = 0;
  double sim_elapsed_ms = 0;   // virtual negotiation time
  double wall_opt_ms = 0;      // real optimizer CPU time
  int auction_rounds = 0;
  int bargain_rounds = 0;
  /// Degradation accounting (FaultyTransport / offer_timeout_ms): offers
  /// lost in transit, offers discarded because they arrived after the
  /// buyer's per-round deadline, duplicate deliveries discarded, and the
  /// number of RFB rounds the deadline actually cut short.
  int64_t offers_dropped = 0;
  int64_t offers_late = 0;
  int64_t offers_duplicated = 0;
  int rounds_timed_out = 0;
  /// Seller-side offer memoization (opt/offer_cache.h), summed over all
  /// federation sellers for this run: repeated (signature, coverage)
  /// requests answered from cache, cold generations, LRU evictions, and
  /// entries discarded because catalog stats changed underneath them.
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t cache_evictions = 0;
  int64_t cache_invalidations = 0;
  /// RFB-identical subqueries the buyer collapsed into one broadcast per
  /// round (always on; keeps message counts cache-independent).
  int64_t rfbs_deduped = 0;
};

}  // namespace qtrade

#endif  // QTRADE_NET_WIRE_H_
