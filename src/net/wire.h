// Typed wire envelopes of the trading negotiation, owned by the network
// layer so any Transport implementation (in-process, faulty, TCP) can
// carry them. Queries travel as SQL text (the commodity description);
// offers carry the §3.1 property vector.
//
// Every envelope has a WireBytes() used by the simulated network's byte
// accounting. Since the serde/ codec landed these are no longer
// estimates: each WireBytes() delegates to the codec's sealed-frame size
// (serde::kFrameHeaderBytes of framing plus the exact encoded payload),
// so `serde::Encode*(msg).size() == msg.WireBytes()` is a tested
// invariant (codec_test.cc) and in-process byte totals match what
// TcpTransport actually ships.
#ifndef QTRADE_NET_WIRE_H_
#define QTRADE_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "opt/offer.h"

namespace qtrade {

/// Pre-codec behavior: the negotiation tick/award envelopes reported
/// hard-coded sizes (AuctionTick 64, CounterOffer 96, AwardBatch
/// 64 + 48/award) regardless of payload, so their byte metrics did not
/// respond to content. The codec made all sizes exact (real encoded
/// frame bytes); flip to true only to reproduce byte totals from benches
/// recorded before content-based sizes landed — the tick/award envelopes
/// then report the legacy constants again while RFBs and offers keep
/// their codec sizes.
inline constexpr bool kLegacyTickWireBytes = false;

/// Trace context carried by every v3 frame header (the wire form of a
/// W3C traceparent plus an NTP-style timestamp exchange). All fields are
/// fixed-width header bytes, so frame sizes — and therefore every byte
/// metric — are identical with tracing on or off.
struct WireTrace {
  /// Id of the negotiation root span this frame belongs to (the buyer's
  /// `negotiation` span id). 0 = untraced.
  uint64_t trace_id = 0;
  /// Id of the span that caused this frame (e.g. the buyer's
  /// rfb_broadcast span); receiver-side spans parent under it. 0 = none.
  uint64_t parent_span = 0;
  /// Sender's tracer clock (µs) when the frame was sealed. 0 = unstamped.
  int64_t sent_at_us = 0;
  /// Replies echo the request's sent_at_us here so the requester can
  /// estimate the peer clock offset: with t0 = echo_us (its own send
  /// time), t1 = the reply's sent_at_us (peer clock) and t3 = receive
  /// time, offset ≈ t1 - (t0 + t3) / 2. 0 on requests.
  int64_t echo_us = 0;
};

/// Request for bids (paper Fig. 2, step B2).
struct Rfb {
  std::string rfb_id;
  std::string buyer;
  std::string sql;           // the traded query
  double reserve_value = -1; // buyer's strategic value estimate; <0 unknown
  /// May the receiving seller subcontract missing fragments from its own
  /// peers (§3.5)? Subcontract RFBs clear this, bounding the depth at 1.
  bool allow_subcontract = true;
  /// Trace context (like a W3C traceparent header): the buyer's
  /// rfb_broadcast span and negotiation round, so seller-side spans nest
  /// under the broadcast that caused them. 0/-1 = untraced. Encoded as
  /// fixed-width codec fields, so byte metrics are identical with
  /// tracing on or off.
  uint64_t trace_parent = 0;
  int32_t trace_round = -1;
  /// The negotiation (channel) this RFB belongs to. Rides in the frame
  /// header, not the payload: servers use it to multiplex hundreds of
  /// concurrent negotiations per connection and clients to demultiplex
  /// interleaved replies. 0 = outside any negotiation (v1 peers).
  uint32_t negotiation_id = 0;
  /// Frame-header trace context (v3). trace_parent/trace_round above
  /// predate it and stay in the payload (v1 schemas are frozen); the
  /// header fields are the authoritative cross-process contract.
  WireTrace trace;

  /// Exact sealed-frame size of this RFB under the serde/ codec.
  int64_t WireBytes() const;
};

/// Hands out process-unique negotiation ids (frame-header channels).
/// Every BuyerEngine::Optimize call takes one, as does each one-shot
/// control RPC (ping/shutdown/fetch), so replies interleaved on a shared
/// connection always demultiplex unambiguously. Never returns 0 (the
/// "no negotiation" channel) and wraps within the codec's hostile-value
/// bound.
uint32_t AllocateNegotiationId();

/// Exact encoded size of one offer travelling alone (a kTickReply frame
/// carrying it: auction undercuts and bargaining concessions).
int64_t OfferWireBytes(const Offer& offer);

/// Exact encoded size of a whole offer-batch reply (the batch envelope
/// plus each offer); the symmetric counterpart of Rfb::WireBytes().
int64_t OfferBatchWireBytes(const std::vector<Offer>& offers);

/// Exact encoded size of the seller's hold answer to a counter-offer
/// (a kTickReply frame with no offer inside).
int64_t TickHoldWireBytes();

/// Award notification (winning offers; Fig. 2 step B3/S3).
struct Award {
  std::string rfb_id;
  std::string offer_id;
};

/// One award message: the buyer's winning-offer list for a seller plus
/// the losing offer ids (strategy feedback).
struct AwardBatch {
  std::vector<Award> awards;
  std::vector<std::string> lost_offer_ids;
  /// Frame-header channel (see Rfb::negotiation_id).
  uint32_t negotiation_id = 0;
  /// Frame-header trace context (see Rfb::trace).
  WireTrace trace;

  /// Exact codec frame size (or the legacy 64 + 48/award constant that
  /// ignored id lengths and the loser list, see kLegacyTickWireBytes).
  int64_t WireBytes() const;
};

/// Auction-round announcement: current best score among the offers of
/// one traded query that span the same alias set (only those are
/// price-comparable).
struct AuctionTick {
  std::string rfb_id;
  std::string signature;  // Offer::CoverageSignature() of the group
  double best_score = 0;  // score of the currently winning offer
  /// Frame-header channel (see Rfb::negotiation_id).
  uint32_t negotiation_id = 0;
  /// Frame-header trace context (see Rfb::trace).
  WireTrace trace;

  /// Exact codec frame size (legacy: hard-coded 64).
  int64_t WireBytes() const;
};

/// Bargaining counter-offer: the buyer pushes the best bidder of one
/// (rfb, signature) group toward `target_value`.
struct CounterOffer {
  std::string rfb_id;
  std::string signature;
  double target_value = 0;
  /// Frame-header channel (see Rfb::negotiation_id).
  uint32_t negotiation_id = 0;
  /// Frame-header trace context (see Rfb::trace).
  WireTrace trace;

  /// Exact codec frame size (legacy: hard-coded 96).
  int64_t WireBytes() const;
};

/// Point-in-time introspection snapshot of a live node: the reply to a
/// kStatsRequest admin frame (served directly by the NodeServer reactor,
/// never touching the trading path). Entries are flat key/value pairs —
/// server counters, in-flight channels, endpoint stats (offer cache,
/// DP pool), flattened metrics registry — so pollers need no schema
/// knowledge beyond "table of strings".
struct StatsSnapshot {
  std::string node;          // responding node's name
  int64_t ts_us = 0;         // responder's tracer/steady clock at capture
  std::vector<std::pair<std::string, std::string>> entries;
  /// Frame-header channel (see Rfb::negotiation_id).
  uint32_t negotiation_id = 0;

  /// Exact codec frame size.
  int64_t WireBytes() const;
};

/// Accounting for one optimization run.
struct TradeMetrics {
  int iterations = 0;
  int64_t rfbs_sent = 0;
  int64_t offers_received = 0;
  int64_t awards_sent = 0;
  int64_t messages = 0;
  int64_t bytes = 0;
  double sim_elapsed_ms = 0;   // virtual negotiation time
  double wall_opt_ms = 0;      // real optimizer CPU time
  int auction_rounds = 0;
  int bargain_rounds = 0;
  /// Degradation accounting (FaultyTransport / offer_timeout_ms): offers
  /// lost in transit, offers discarded because they arrived after the
  /// buyer's per-round deadline, duplicate deliveries discarded, and the
  /// number of RFB rounds the deadline actually cut short.
  int64_t offers_dropped = 0;
  int64_t offers_late = 0;
  int64_t offers_duplicated = 0;
  int rounds_timed_out = 0;
  /// Seller-side offer memoization (opt/offer_cache.h), summed over all
  /// federation sellers for this run: repeated (signature, coverage)
  /// requests answered from cache, cold generations, LRU evictions, and
  /// entries discarded because catalog stats changed underneath them.
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t cache_evictions = 0;
  int64_t cache_invalidations = 0;
  /// RFB-identical subqueries the buyer collapsed into one broadcast per
  /// round (always on; keeps message counts cache-independent).
  int64_t rfbs_deduped = 0;
  /// Fault tolerance (net/resilient.h + facade award recovery):
  /// transport-level re-sends of dropped messages, re-sends that still
  /// came back dropped after the attempt budget, circuit-breaker trips /
  /// half-open probes / suppressed sends, award deliveries that failed
  /// at execution time, plan leaves patched onto the next-ranked
  /// equivalent offer (re-awards), and scoped re-negotiations run
  /// without the failed sellers (reroutes).
  int64_t retries = 0;
  int64_t retries_exhausted = 0;
  int64_t breaker_trips = 0;
  int64_t breaker_probes = 0;
  int64_t breaker_short_circuits = 0;
  int64_t deliveries_failed = 0;
  int64_t reawards = 0;
  int64_t reroutes = 0;
  /// Data plane (facade Execute): sold answers shipped to the buyer,
  /// how many arrived as kRowChunk streams, their chunk/row/byte
  /// totals, and the measured first-row/last-row latency summed over
  /// deliveries (µs; divide by `deliveries` for the mean). first_row ==
  /// last_row for whole-RowSet deliveries; bytes counts wire frames for
  /// remote fetches and 0 for in-process ones.
  int64_t deliveries = 0;
  int64_t deliveries_streamed = 0;
  int64_t delivery_chunks = 0;
  int64_t delivery_rows = 0;
  int64_t delivery_bytes = 0;
  int64_t delivery_first_row_us = 0;
  int64_t delivery_last_row_us = 0;
  /// Seller pricing strategies (trading/strategy.h), summed over all
  /// federation sellers for this run: pricing decisions made, quotes
  /// moved by the arbitrage-free containment clamp, quotes answered
  /// from a sticky price book, and negotiation outcomes the strategies
  /// observed.
  int64_t strategy_quotes = 0;
  int64_t strategy_clamped = 0;
  int64_t strategy_pinned = 0;
  int64_t strategy_wins = 0;
  int64_t strategy_losses = 0;
};

}  // namespace qtrade

#endif  // QTRADE_NET_WIRE_H_
