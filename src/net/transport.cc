#include "net/transport.h"

#include <atomic>
#include <chrono>
#include <thread>

#include "util/logging.h"

namespace qtrade {

namespace {

double WallMs(std::chrono::steady_clock::time_point start) {
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

}  // namespace

void TransportObservability::Set(obs::Tracer* tracer,
                                 obs::MetricsRegistry* metrics) {
  std::lock_guard<std::mutex> lock(io_mu_);
  tracer_.store(tracer, std::memory_order_relaxed);
  metrics_.store(metrics, std::memory_order_relaxed);
  io_.clear();  // handles belong to the previous registry
}

TransportObservability::NodeIo* TransportObservability::io(
    const std::string& node) {
  std::lock_guard<std::mutex> lock(io_mu_);
  obs::MetricsRegistry* metrics = metrics_.load(std::memory_order_relaxed);
  if (metrics == nullptr) return nullptr;
  auto it = io_.find(node);
  if (it == io_.end()) {
    NodeIo handles;
    const std::string prefix = "transport." + node + ".";
    handles.msgs_sent = metrics->counter(prefix + "msgs_sent");
    handles.bytes_sent = metrics->counter(prefix + "bytes_sent");
    handles.msgs_recv = metrics->counter(prefix + "msgs_recv");
    handles.bytes_recv = metrics->counter(prefix + "bytes_recv");
    it = io_.emplace(node, handles).first;
  }
  return &it->second;
}

void TransportObservability::ObserveSend(const std::string& from,
                                         const std::string& to, int64_t bytes,
                                         const char* kind,
                                         obs::SpanRef parent) {
  // Fast path when no observability is attached: two relaxed loads.
  obs::Tracer* tracer = tracer_.load(std::memory_order_relaxed);
  if (metrics_.load(std::memory_order_relaxed) == nullptr &&
      tracer == nullptr) {
    return;
  }
  if (NodeIo* out = io(from)) {
    out->msgs_sent->Increment();
    out->bytes_sent->Add(bytes);
  }
  if (NodeIo* in = io(to)) {
    in->msgs_recv->Increment();
    in->bytes_recv->Add(bytes);
  }
  if (obs::Tracer::Active(tracer)) {
    tracer->StartInstant(std::string("send[") + kind + "]", parent)
        .Node(from)
        .Attr("to", to)
        .Attr("bytes", bytes);
  }
}

InProcessTransport::InProcessTransport(SimNetwork* network,
                                       InProcessTransportOptions options)
    : network_(network), options_(options) {}

void InProcessTransport::SetObservability(obs::Tracer* tracer,
                                          obs::MetricsRegistry* metrics) {
  obs_.Set(tracer, metrics);
}

void InProcessTransport::Register(NodeEndpoint* endpoint) {
  if (endpoint == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  endpoints_[endpoint->name()] = endpoint;
}

NodeEndpoint* InProcessTransport::endpoint(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = endpoints_.find(name);
  return it == endpoints_.end() ? nullptr : it->second;
}

std::vector<std::string> InProcessTransport::NodeNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(endpoints_.size());
  for (const auto& [name, ep] : endpoints_) names.push_back(name);
  return names;
}

std::vector<OfferReply> InProcessTransport::BroadcastRfb(
    const std::string& from, const Rfb& rfb,
    const std::vector<std::string>& to, const char* rfb_kind,
    const char* offer_kind) {
  struct Task {
    NodeEndpoint* ep = nullptr;
    double out_ms = 0;
    double compute_ms = 0;
    Status status = Status::OK();
    std::vector<Offer> offers;
  };
  const size_t n = to.size();
  std::vector<Task> tasks(n);

  // RFB deliveries are accounted on the dispatching thread, so counters
  // are identical whether the handlers below run serially or in parallel.
  const obs::SpanRef rfb_span{rfb.trace_parent, rfb.trace_round};
  for (size_t i = 0; i < n; ++i) {
    tasks[i].ep = endpoint(to[i]);
    tasks[i].out_ms = network_->Send(from, to[i], rfb.WireBytes(), rfb_kind);
    obs_.ObserveSend(from, to[i], rfb.WireBytes(), rfb_kind, rfb_span);
    if (tasks[i].ep == nullptr) {
      tasks[i].status = Status::NotFound("no endpoint registered: " + to[i]);
    }
  }

  // Seller-side offer generation: the round's critical path is the
  // slowest seller, not the sum, so fan the handlers out on threads.
  auto run = [&](size_t i) {
    Task& task = tasks[i];
    if (task.ep == nullptr) return;
    auto start = std::chrono::steady_clock::now();
    auto offers = task.ep->HandleRfb(rfb);
    task.compute_ms = WallMs(start);
    if (offers.ok()) {
      task.offers = std::move(*offers);
    } else {
      task.status = offers.status();
    }
  };
  size_t workers =
      options_.parallel
          ? (options_.max_threads != 0 ? options_.max_threads
                                       : std::thread::hardware_concurrency())
          : 1;
  workers = std::min(std::max<size_t>(workers, 1), n);
  if (workers <= 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) run(i);
  } else {
    std::atomic<size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (size_t w = 0; w < workers; ++w) {
      pool.emplace_back([&] {
        for (size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
          run(i);
        }
      });
    }
    for (auto& t : pool) t.join();
  }

  // Reply accounting, again on the dispatching thread. A failed handler
  // is a seller that never answered: no reply message.
  std::vector<OfferReply> replies(n);
  for (size_t i = 0; i < n; ++i) {
    Task& task = tasks[i];
    OfferReply& reply = replies[i];
    reply.seller = to[i];
    if (!task.status.ok()) {
      QTRADE_LOG(kWarning) << "seller " << to[i]
                           << " failed on RFB: " << task.status.ToString();
      reply.ok = false;
      reply.arrival_ms = task.out_ms + task.compute_ms;
      continue;
    }
    const int64_t batch_bytes = OfferBatchWireBytes(task.offers);
    double back_ms = network_->Send(to[i], from, batch_bytes, offer_kind);
    obs_.ObserveSend(to[i], from, batch_bytes, offer_kind, rfb_span);
    reply.offers = std::move(task.offers);
    reply.arrival_ms = task.out_ms + task.compute_ms + back_ms;
  }
  return replies;
}

TickReply InProcessTransport::SendAuctionTick(const std::string& from,
                                              const std::string& to,
                                              const AuctionTick& tick) {
  NodeEndpoint* ep = endpoint(to);
  if (ep == nullptr) return {std::nullopt, 0, true};
  TickReply reply;
  double out_ms = network_->Send(from, to, tick.WireBytes(), "auction");
  obs_.ObserveSend(from, to, tick.WireBytes(), "auction", {});
  auto start = std::chrono::steady_clock::now();
  reply.updated = ep->HandleAuctionTick(tick);
  double compute_ms = WallMs(start);
  double back_ms = 0;
  if (reply.updated.has_value()) {
    const int64_t offer_bytes = OfferWireBytes(*reply.updated);
    back_ms = network_->Send(to, from, offer_bytes, "offer");
    obs_.ObserveSend(to, from, offer_bytes, "offer", {});
  }
  reply.elapsed_ms = out_ms + compute_ms + back_ms;
  return reply;
}

TickReply InProcessTransport::SendCounterOffer(const std::string& from,
                                               const std::string& to,
                                               const CounterOffer& counter) {
  NodeEndpoint* ep = endpoint(to);
  if (ep == nullptr) return {std::nullopt, 0, true};
  TickReply reply;
  double out_ms = network_->Send(from, to, counter.WireBytes(), "bargain");
  obs_.ObserveSend(from, to, counter.WireBytes(), "bargain", {});
  auto start = std::chrono::steady_clock::now();
  reply.updated = ep->HandleCounterOffer(counter);
  double compute_ms = WallMs(start);
  // Accept or hold, the seller always answers a counter-offer. A hold is
  // an empty tick-reply frame; an acceptance ships the re-quoted offer.
  const int64_t back_bytes = reply.updated.has_value()
                                 ? OfferWireBytes(*reply.updated)
                                 : TickHoldWireBytes();
  double back_ms = network_->Send(to, from, back_bytes, "bargain");
  obs_.ObserveSend(to, from, back_bytes, "bargain", {});
  reply.elapsed_ms = out_ms + compute_ms + back_ms;
  return reply;
}

double InProcessTransport::SendAwards(const std::string& from,
                                      const std::string& to,
                                      const AwardBatch& batch) {
  NodeEndpoint* ep = endpoint(to);
  if (ep == nullptr) return 0;
  double out_ms = network_->Send(from, to, batch.WireBytes(), "award");
  obs_.ObserveSend(from, to, batch.WireBytes(), "award", {});
  ep->HandleAwards(batch);
  return out_ms;
}

void InProcessTransport::AdvanceRound(double ms) {
  network_->AdvanceClock(ms);
}

}  // namespace qtrade
