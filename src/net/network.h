// Simulated wide-area network: message/byte accounting and a virtual
// clock. The trading negotiation runs in rounds (broadcast RFB, parallel
// replies), so elapsed simulated time per round is latency plus the
// slowest transfer, while message and byte counters accumulate per
// message — both are metrics of the paper's evaluation.
#ifndef QTRADE_NET_NETWORK_H_
#define QTRADE_NET_NETWORK_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace qtrade {

struct NetworkParams {
  double latency_ms = 40.0;       // one-way, per message
  double bytes_per_ms = 8000.0;   // ~8 MB/s WAN
  double msg_overhead_bytes = 256.0;
};

struct MessageStats {
  int64_t messages = 0;
  int64_t bytes = 0;

  void Add(int64_t message_bytes) {
    ++messages;
    bytes += message_bytes;
  }
};

/// Send/AdvanceClock/ResetStats are internally synchronized: transport
/// worker threads (nested subcontract fan-outs) may account messages
/// concurrently. The stats accessors return references and are meant for
/// quiescent reads between negotiation rounds.
class SimNetwork {
 public:
  SimNetwork() = default;
  explicit SimNetwork(const NetworkParams& params) : params_(params) {}

  const NetworkParams& params() const { return params_; }

  /// Records one message of `payload_bytes` from `from` to `to` under a
  /// statistics bucket `kind` ("rfb", "offer", "award", "data", ...).
  /// Returns the message's one-way delivery time in ms.
  double Send(const std::string& from, const std::string& to,
              int64_t payload_bytes, const std::string& kind);

  /// One-way delivery time for a payload (no accounting).
  double DeliveryTimeMs(int64_t payload_bytes) const;

  /// Advances the virtual clock (e.g. by the duration of a parallel
  /// negotiation round: callers compute the round's critical path).
  void AdvanceClock(double ms);
  double now_ms() const { return now_ms_; }

  const MessageStats& total() const { return total_; }
  const std::map<std::string, MessageStats>& by_kind() const {
    return by_kind_;
  }

  void ResetStats();

  std::string StatsToString() const;

 private:
  NetworkParams params_;
  mutable std::mutex mu_;
  double now_ms_ = 0;
  MessageStats total_;
  std::map<std::string, MessageStats> by_kind_;
};

}  // namespace qtrade

#endif  // QTRADE_NET_NETWORK_H_
