#include "util/random.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace qtrade {

int64_t Rng::Uniform(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::UniformReal(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

bool Rng::Chance(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

int64_t Rng::Zipf(int64_t n, double theta) {
  assert(n >= 1);
  if (theta <= 0) return Uniform(1, n);
  // Inverse-CDF sampling over the (truncated) Zipf mass function. n is small
  // in our workloads (partitions, nodes), so the linear scan is fine.
  double norm = 0;
  for (int64_t i = 1; i <= n; ++i) norm += 1.0 / std::pow(i, theta);
  double u = UniformReal(0, norm);
  double acc = 0;
  for (int64_t i = 1; i <= n; ++i) {
    acc += 1.0 / std::pow(i, theta);
    if (u <= acc) return i;
  }
  return n;
}

std::string Rng::Identifier(int len) {
  static const char kAlpha[] = "abcdefghijklmnopqrstuvwxyz";
  static const char kAlnum[] = "abcdefghijklmnopqrstuvwxyz0123456789";
  std::string out;
  out.reserve(len);
  for (int i = 0; i < len; ++i) {
    if (i == 0) {
      out.push_back(kAlpha[Uniform(0, 25)]);
    } else {
      out.push_back(kAlnum[Uniform(0, 35)]);
    }
  }
  return out;
}

size_t Rng::Index(size_t n) {
  assert(n > 0);
  return static_cast<size_t>(Uniform(0, static_cast<int64_t>(n) - 1));
}

std::vector<size_t> Rng::Sample(size_t n, size_t k) {
  assert(k <= n);
  std::vector<size_t> all(n);
  for (size_t i = 0; i < n; ++i) all[i] = i;
  Shuffle(&all);
  all.resize(k);
  std::sort(all.begin(), all.end());
  return all;
}

}  // namespace qtrade
