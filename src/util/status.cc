#include "util/status.h"

namespace qtrade {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kBindError:
      return "BindError";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kTimeout:
      return "Timeout";
    case StatusCode::kNoPlanFound:
      return "NoPlanFound";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace qtrade
