#include "util/logging.h"

#include <atomic>

namespace qtrade {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarning};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

void SetLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Keep only the basename to avoid absolute build paths in output.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= GetLogLevel()) {
    std::cerr << stream_.str() << "\n";
  }
}

}  // namespace internal
}  // namespace qtrade
