// Deterministic PRNG used by the workload generator, the simulator and the
// property-based tests. A thin wrapper over std::mt19937_64 so every
// experiment is reproducible from its seed.
#ifndef QTRADE_UTIL_RANDOM_H_
#define QTRADE_UTIL_RANDOM_H_

#include <algorithm>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace qtrade {

/// Seeded random source. Not thread-safe; use one per thread.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi);

  /// Uniform double in [lo, hi).
  double UniformReal(double lo, double hi);

  /// Bernoulli trial with success probability p.
  bool Chance(double p);

  /// Zipf-distributed rank in [1, n] with skew parameter `theta` >= 0
  /// (theta == 0 is uniform). Used for skewed placement/popularity.
  int64_t Zipf(int64_t n, double theta);

  /// Random lower-case identifier of `len` characters, first char alphabetic.
  std::string Identifier(int len);

  /// Picks a uniformly random element index for a container of size n (>0).
  size_t Index(size_t n);

  /// Shuffles `v` in place.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    std::shuffle(v->begin(), v->end(), engine_);
  }

  /// Chooses k distinct indices out of [0, n). Requires k <= n.
  std::vector<size_t> Sample(size_t n, size_t k);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace qtrade

#endif  // QTRADE_UTIL_RANDOM_H_
