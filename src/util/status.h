// Status and Result<T>: exception-free error propagation, in the style of
// arrow::Status / rocksdb::Status.
#ifndef QTRADE_UTIL_STATUS_H_
#define QTRADE_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace qtrade {

/// Machine-readable category of a failure.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kParseError,
  kBindError,
  kUnsupported,
  kInternal,
  kTimeout,
  kNoPlanFound,
};

/// Returns a short human-readable name for a StatusCode ("ParseError", ...).
const char* StatusCodeName(StatusCode code);

/// Success-or-error value returned by fallible functions. Cheap to copy on
/// the OK path (no allocation); error path carries a message.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status BindError(std::string msg) {
    return Status(StatusCode::kBindError, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status NoPlanFound(std::string msg) {
    return Status(StatusCode::kNoPlanFound, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Holds either a value of type T or an error Status.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status)                          // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

// Propagate a non-OK Status from an expression.
#define QTRADE_RETURN_IF_ERROR(expr)                \
  do {                                              \
    ::qtrade::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                      \
  } while (0)

// Evaluate a Result-returning expression; on error return its Status,
// otherwise bind the value to `lhs`.
#define QTRADE_ASSIGN_OR_RETURN_IMPL(var, lhs, rexpr) \
  auto var = (rexpr);                                 \
  if (!var.ok()) return var.status();                 \
  lhs = std::move(var).value();

#define QTRADE_CONCAT_INNER(a, b) a##b
#define QTRADE_CONCAT(a, b) QTRADE_CONCAT_INNER(a, b)

#define QTRADE_ASSIGN_OR_RETURN(lhs, rexpr) \
  QTRADE_ASSIGN_OR_RETURN_IMPL(             \
      QTRADE_CONCAT(_result_, __LINE__), lhs, rexpr)

}  // namespace qtrade

#endif  // QTRADE_UTIL_STATUS_H_
