// Small string helpers shared across the library.
#ifndef QTRADE_UTIL_STRINGS_H_
#define QTRADE_UTIL_STRINGS_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace qtrade {

/// Lower-cases ASCII characters; non-ASCII bytes pass through unchanged.
std::string ToLower(std::string_view s);

/// Upper-cases ASCII characters; non-ASCII bytes pass through unchanged.
std::string ToUpper(std::string_view s);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Splits `s` on `sep`, keeping empty pieces.
std::vector<std::string> Split(std::string_view s, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Joins the stringified elements of `parts` with `sep` between them.
template <typename Container>
std::string Join(const Container& parts, std::string_view sep) {
  std::ostringstream out;
  bool first = true;
  for (const auto& p : parts) {
    if (!first) out << sep;
    out << p;
    first = false;
  }
  return out.str();
}

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

}  // namespace qtrade

#endif  // QTRADE_UTIL_STRINGS_H_
