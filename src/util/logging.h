// Minimal leveled logging. Defaults to warnings-and-above so tests and
// benches stay quiet; the examples turn on info logging to narrate the
// trading rounds.
#ifndef QTRADE_UTIL_LOGGING_H_
#define QTRADE_UTIL_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string>

namespace qtrade {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level that actually gets emitted.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the stream expression in the disabled branch of QTRADE_LOG
/// (operator& binds looser than << but tighter than ?:).
struct LogVoidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal

// Streaming form: QTRADE_LOG(kInfo) << "x=" << x;
// The level gate runs BEFORE any formatting: when the level is disabled
// the whole right-hand side — LogMessage construction and every <<
// operand — is skipped, so disabled logging is free on the negotiation
// hot path. Expression form (no if/else) stays dangling-else safe.
#define QTRADE_LOG(level)                                                 \
  (::qtrade::LogLevel::level < ::qtrade::GetLogLevel())                   \
      ? (void)0                                                           \
      : ::qtrade::internal::LogVoidify() &                                \
            ::qtrade::internal::LogMessage(::qtrade::LogLevel::level,     \
                                           __FILE__, __LINE__)            \
                .stream()

}  // namespace qtrade

#endif  // QTRADE_UTIL_LOGGING_H_
