#include "plan/cost_model.h"

#include <algorithm>
#include <cmath>

namespace qtrade {

namespace {
double Log2Ceil(double n) { return n <= 2 ? 1.0 : std::log2(n); }
}  // namespace

double CostModel::ScanCost(double rows, double row_bytes,
                           int num_predicates) const {
  rows = std::max(0.0, rows);
  double pages = std::ceil(rows * row_bytes / p_.page_bytes);
  return pages * p_.io_page_ms + rows * p_.cpu_tuple_ms +
         rows * num_predicates * p_.cpu_predicate_ms;
}

double CostModel::FilterCost(double rows, int num_predicates) const {
  return std::max(0.0, rows) * num_predicates * p_.cpu_predicate_ms;
}

double CostModel::ProjectCost(double rows) const {
  return std::max(0.0, rows) * p_.cpu_tuple_ms;
}

double CostModel::HashJoinCost(double build_rows, double probe_rows,
                               double output_rows) const {
  return std::max(0.0, build_rows) * p_.hash_build_ms +
         std::max(0.0, probe_rows) * p_.hash_probe_ms +
         std::max(0.0, output_rows) * p_.cpu_tuple_ms;
}

double CostModel::NlJoinCost(double outer_rows, double inner_rows) const {
  return std::max(0.0, outer_rows) * std::max(1.0, inner_rows) *
         p_.cpu_predicate_ms;
}

double CostModel::SortCost(double rows) const {
  rows = std::max(0.0, rows);
  return rows * Log2Ceil(rows) * p_.sort_tuple_ms;
}

double CostModel::AggregateCost(double rows, double groups) const {
  return std::max(0.0, rows) * p_.agg_tuple_ms +
         std::max(0.0, groups) * p_.cpu_tuple_ms;
}

double CostModel::UnionCost(double total_rows) const {
  return std::max(0.0, total_rows) * p_.cpu_tuple_ms;
}

double CostModel::DedupCost(double rows) const {
  return std::max(0.0, rows) * p_.hash_build_ms;
}

double CostModel::TransferCost(double rows, double row_bytes) const {
  double bytes = std::max(0.0, rows) * row_bytes + p_.msg_overhead_bytes;
  return 2 * p_.net_latency_ms + bytes * p_.net_byte_ms;
}

double CostModel::MessageCost(double payload_bytes) const {
  return p_.net_latency_ms +
         (payload_bytes + p_.msg_overhead_bytes) * p_.net_byte_ms;
}

}  // namespace qtrade
