// Physical execution plans. A plan is an immutable tree of PlanNodes; each
// node carries its output schema, estimated output rows and cumulative
// estimated cost (in the CostModel's millisecond unit).
//
// The distributed flavour of the paper shows up in the kRemote node: a leaf
// that stands for "the answer of this SQL query, purchased from that node
// at the quoted cost" — exactly the query-answer commodity of §3.1.
#ifndef QTRADE_PLAN_PLAN_H_
#define QTRADE_PLAN_PLAN_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sql/analyzer.h"
#include "sql/ast.h"
#include "types/row.h"

namespace qtrade {

enum class PlanKind {
  kScan,       // local fragment scan (union of hosted partitions) + filter
  kFilter,     // residual predicate
  kProject,    // expression projection (no aggregates)
  kHashJoin,   // equi-join
  kNlJoin,     // join with arbitrary predicate
  kHashAggregate,  // grouped or scalar aggregation
  kSort,       // order by
  kUnionAll,   // bag concatenation
  kDedup,      // duplicate elimination over all columns
  kLimit,      // first-n
  kRemote,     // purchased query-answer delivered by a remote node
};

const char* PlanKindName(PlanKind kind);

struct PlanNode;
using PlanPtr = std::shared_ptr<const PlanNode>;

/// One node of a physical plan. Field groups are meaningful per kind; use
/// PlanFactory to construct nodes with consistent estimates.
struct PlanNode {
  PlanKind kind = PlanKind::kScan;
  std::vector<PlanPtr> children;

  TupleSchema schema;      // output schema
  double rows = 0;         // estimated output rows
  double row_bytes = 64;   // estimated bytes per output row
  double cost = 0;         // cumulative estimated cost (ms)

  // kScan.
  std::string table;
  std::string alias;
  std::vector<std::string> partition_ids;  // hosted fragments to union
  sql::ExprPtr filter;                     // also used by kFilter

  // kProject / kHashAggregate.
  std::vector<sql::BoundOutput> outputs;
  std::vector<sql::BoundColumn> group_by;  // empty = scalar aggregation
  sql::ExprPtr having;

  // kHashJoin / kNlJoin. Keys pair (left, right) columns; `filter` holds
  // any residual predicate evaluated on joined rows.
  std::vector<std::pair<sql::BoundColumn, sql::BoundColumn>> join_keys;

  // kSort.
  std::vector<sql::OrderItem> sort_keys;

  // kLimit.
  int64_t limit = 0;

  // kRemote.
  std::string remote_node;  // seller delivering the answer
  std::string remote_sql;   // the purchased query, as shipped
  std::string offer_id;     // provenance: which trading offer this buys
};

/// Pretty-printed operator tree with row/cost annotations.
std::string Explain(const PlanPtr& plan);

/// Sum of quoted costs of all kRemote leaves (what the buyer "pays").
double TotalRemoteCost(const PlanPtr& plan);

/// All kRemote nodes in the tree, in preorder.
std::vector<const PlanNode*> CollectRemotes(const PlanPtr& plan);

/// Number of nodes in the tree.
int PlanSize(const PlanPtr& plan);

}  // namespace qtrade

#endif  // QTRADE_PLAN_PLAN_H_
