#include "plan/plan_factory.h"

#include <algorithm>
#include <cassert>

namespace qtrade {

double EstimateRowBytes(const TupleSchema& schema) {
  double bytes = 8;  // per-tuple overhead
  for (const auto& col : schema.columns()) {
    switch (col.type) {
      case TypeKind::kInt64:
      case TypeKind::kDouble:
        bytes += 8;
        break;
      case TypeKind::kBool:
        bytes += 1;
        break;
      case TypeKind::kString:
        bytes += 24;
        break;
    }
  }
  return bytes;
}

namespace {

std::shared_ptr<PlanNode> Make(PlanKind kind, std::vector<PlanPtr> children) {
  auto node = std::make_shared<PlanNode>();
  node->kind = kind;
  node->children = std::move(children);
  return node;
}

double ChildrenCost(const std::vector<PlanPtr>& children) {
  double acc = 0;
  for (const auto& c : children) acc += c->cost;
  return acc;
}

int CountConjuncts(const sql::ExprPtr& pred) {
  return pred ? static_cast<int>(sql::SplitConjuncts(pred).size()) : 0;
}

TupleSchema SchemaFromOutputs(const std::vector<sql::BoundOutput>& outputs) {
  TupleSchema schema;
  for (const auto& out : outputs) {
    TupleColumn col;
    col.name = out.name;
    col.type = out.type;
    if (out.expr && out.expr->kind == sql::ExprKind::kColumnRef) {
      col.qualifier = out.expr->qualifier;
    }
    schema.AddColumn(std::move(col));
  }
  return schema;
}

}  // namespace

PlanPtr PlanFactory::Scan(const std::string& table, const std::string& alias,
                          TupleSchema schema,
                          std::vector<std::string> partition_ids,
                          sql::ExprPtr filter, double fragment_rows,
                          double out_rows, double row_bytes) const {
  auto node = Make(PlanKind::kScan, {});
  node->table = table;
  node->alias = alias;
  node->schema = std::move(schema);
  node->partition_ids = std::move(partition_ids);
  node->filter = std::move(filter);
  node->rows = out_rows;
  node->row_bytes = row_bytes;
  node->cost =
      cost_->ScanCost(fragment_rows, row_bytes, CountConjuncts(node->filter));
  return node;
}

PlanPtr PlanFactory::Filter(PlanPtr child, sql::ExprPtr predicate,
                            double out_rows) const {
  assert(child);
  auto node = Make(PlanKind::kFilter, {child});
  node->schema = child->schema;
  node->filter = std::move(predicate);
  node->rows = out_rows;
  node->row_bytes = child->row_bytes;
  node->cost = child->cost +
               cost_->FilterCost(child->rows, CountConjuncts(node->filter));
  return node;
}

PlanPtr PlanFactory::Project(PlanPtr child,
                             std::vector<sql::BoundOutput> outputs) const {
  assert(child);
  auto node = Make(PlanKind::kProject, {child});
  node->schema = SchemaFromOutputs(outputs);
  node->outputs = std::move(outputs);
  node->rows = child->rows;
  node->row_bytes = EstimateRowBytes(node->schema);
  node->cost = child->cost + cost_->ProjectCost(child->rows);
  return node;
}

PlanPtr PlanFactory::HashJoin(
    PlanPtr left, PlanPtr right,
    std::vector<std::pair<sql::BoundColumn, sql::BoundColumn>> keys,
    sql::ExprPtr residual, double out_rows) const {
  assert(left && right);
  auto node = Make(PlanKind::kHashJoin, {left, right});
  node->schema = TupleSchema::Concat(left->schema, right->schema);
  node->join_keys = std::move(keys);
  node->filter = std::move(residual);
  node->rows = out_rows;
  node->row_bytes = left->row_bytes + right->row_bytes;
  // Build on the right child (optimizers put the smaller input right).
  node->cost = left->cost + right->cost +
               cost_->HashJoinCost(right->rows, left->rows, out_rows);
  return node;
}

PlanPtr PlanFactory::NlJoin(PlanPtr left, PlanPtr right, sql::ExprPtr predicate,
                            double out_rows) const {
  assert(left && right);
  auto node = Make(PlanKind::kNlJoin, {left, right});
  node->schema = TupleSchema::Concat(left->schema, right->schema);
  node->filter = std::move(predicate);
  node->rows = out_rows;
  node->row_bytes = left->row_bytes + right->row_bytes;
  node->cost =
      left->cost + right->cost + cost_->NlJoinCost(left->rows, right->rows);
  return node;
}

PlanPtr PlanFactory::Aggregate(PlanPtr child,
                               std::vector<sql::BoundOutput> outputs,
                               std::vector<sql::BoundColumn> group_by,
                               sql::ExprPtr having, double out_groups) const {
  assert(child);
  auto node = Make(PlanKind::kHashAggregate, {child});
  node->schema = SchemaFromOutputs(outputs);
  node->outputs = std::move(outputs);
  node->group_by = std::move(group_by);
  node->having = std::move(having);
  node->rows = std::max(node->group_by.empty() ? 1.0 : 0.0, out_groups);
  node->row_bytes = EstimateRowBytes(node->schema);
  node->cost = child->cost + cost_->AggregateCost(child->rows, node->rows);
  return node;
}

PlanPtr PlanFactory::Sort(PlanPtr child,
                          std::vector<sql::OrderItem> keys) const {
  assert(child);
  auto node = Make(PlanKind::kSort, {child});
  node->schema = child->schema;
  node->sort_keys = std::move(keys);
  node->rows = child->rows;
  node->row_bytes = child->row_bytes;
  node->cost = child->cost + cost_->SortCost(child->rows);
  return node;
}

PlanPtr PlanFactory::UnionAll(std::vector<PlanPtr> children) const {
  assert(!children.empty());
  auto node = Make(PlanKind::kUnionAll, std::move(children));
  node->schema = node->children.front()->schema;
  double rows = 0;
  for (const auto& c : node->children) rows += c->rows;
  node->rows = rows;
  node->row_bytes = node->children.front()->row_bytes;
  node->cost = ChildrenCost(node->children) + cost_->UnionCost(rows);
  return node;
}

PlanPtr PlanFactory::Dedup(PlanPtr child, double out_rows) const {
  assert(child);
  auto node = Make(PlanKind::kDedup, {child});
  node->schema = child->schema;
  node->rows = out_rows;
  node->row_bytes = child->row_bytes;
  node->cost = child->cost + cost_->DedupCost(child->rows);
  return node;
}

PlanPtr PlanFactory::Limit(PlanPtr child, int64_t n) const {
  assert(child);
  auto node = Make(PlanKind::kLimit, {child});
  node->schema = child->schema;
  node->limit = n;
  node->rows = std::min<double>(child->rows, static_cast<double>(n));
  node->row_bytes = child->row_bytes;
  node->cost = child->cost;  // pass-through; upstream stops early
  return node;
}

PlanPtr PlanFactory::Remote(const std::string& node_name,
                            const std::string& sql_text, TupleSchema schema,
                            double rows, double row_bytes, double quoted_cost,
                            const std::string& offer_id) const {
  auto node = Make(PlanKind::kRemote, {});
  node->remote_node = node_name;
  node->remote_sql = sql_text;
  node->schema = std::move(schema);
  node->rows = rows;
  node->row_bytes = row_bytes;
  node->cost = quoted_cost;
  node->offer_id = offer_id;
  return node;
}

}  // namespace qtrade
