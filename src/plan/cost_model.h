// Cost model shared by every optimizer in the repository (seller local DP,
// buyer plan assembler, traditional-optimizer baselines), so that all plans
// are priced in the same unit. The unit is estimated elapsed milliseconds,
// matching the paper's choice of "cost = time to deliver the answer".
#ifndef QTRADE_PLAN_COST_MODEL_H_
#define QTRADE_PLAN_COST_MODEL_H_

#include <cstdint>

namespace qtrade {

/// Calibration constants. Defaults model a commodity node on a WAN, chosen
/// so that network transfer dominates I/O which dominates CPU — the regime
/// the paper's federation lives in.
struct CostParams {
  // CPU.
  double cpu_tuple_ms = 0.0002;       // touching one tuple
  double cpu_predicate_ms = 0.0001;   // evaluating one predicate on a tuple
  double hash_build_ms = 0.0006;      // inserting a tuple into a hash table
  double hash_probe_ms = 0.0003;      // probing a hash table
  double sort_tuple_ms = 0.0004;      // per tuple per log2(n) comparison level
  double agg_tuple_ms = 0.0005;       // per input tuple of an aggregation
  // I/O.
  double io_page_ms = 0.08;           // sequential page read
  double page_bytes = 8192.0;
  // Network (WAN defaults).
  double net_latency_ms = 40.0;       // per message one-way
  double net_byte_ms = 0.00012;       // per payload byte (~8 MB/s)
  double msg_overhead_bytes = 256.0;  // envelope per message
};

/// Prices individual physical operators. Stateless aside from parameters.
class CostModel {
 public:
  CostModel() = default;
  explicit CostModel(const CostParams& params) : p_(params) {}

  const CostParams& params() const { return p_; }

  /// Sequential scan of a fragment of `rows` rows with `row_bytes` each,
  /// evaluating `num_predicates` on every row.
  double ScanCost(double rows, double row_bytes, int num_predicates) const;

  /// Filtering `rows` input rows with `num_predicates` conjuncts.
  double FilterCost(double rows, int num_predicates) const;

  /// Per-row projection / expression evaluation.
  double ProjectCost(double rows) const;

  /// Hash join: build on the smaller side, probe with the larger.
  double HashJoinCost(double build_rows, double probe_rows,
                      double output_rows) const;

  /// Nested-loop join (used for non-equi join predicates).
  double NlJoinCost(double outer_rows, double inner_rows) const;

  /// In-memory sort.
  double SortCost(double rows) const;

  /// Hash aggregation of `rows` inputs into `groups` groups.
  double AggregateCost(double rows, double groups) const;

  /// Concatenation of union branches.
  double UnionCost(double total_rows) const;

  /// Duplicate elimination via hashing.
  double DedupCost(double rows) const;

  /// Shipping `rows` rows of `row_bytes` each over the network as one
  /// logical transfer (one request + streamed response).
  double TransferCost(double rows, double row_bytes) const;

  /// Cost of one control message carrying `payload_bytes`.
  double MessageCost(double payload_bytes) const;

 private:
  CostParams p_;
};

}  // namespace qtrade

#endif  // QTRADE_PLAN_COST_MODEL_H_
