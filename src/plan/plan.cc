#include "plan/plan.h"

#include <iomanip>
#include <sstream>

#include "util/strings.h"

namespace qtrade {

const char* PlanKindName(PlanKind kind) {
  switch (kind) {
    case PlanKind::kScan: return "Scan";
    case PlanKind::kFilter: return "Filter";
    case PlanKind::kProject: return "Project";
    case PlanKind::kHashJoin: return "HashJoin";
    case PlanKind::kNlJoin: return "NLJoin";
    case PlanKind::kHashAggregate: return "HashAggregate";
    case PlanKind::kSort: return "Sort";
    case PlanKind::kUnionAll: return "UnionAll";
    case PlanKind::kDedup: return "Dedup";
    case PlanKind::kLimit: return "Limit";
    case PlanKind::kRemote: return "Remote";
  }
  return "?";
}

namespace {

void ExplainRec(const PlanNode& node, int depth, std::ostringstream& out) {
  for (int i = 0; i < depth; ++i) out << "  ";
  out << PlanKindName(node.kind);
  switch (node.kind) {
    case PlanKind::kScan:
      out << " " << node.table;
      if (!node.alias.empty() && node.alias != node.table) {
        out << " AS " << node.alias;
      }
      out << " [" << Join(node.partition_ids, ",") << "]";
      if (node.filter) out << " filter=(" << sql::ToSql(node.filter) << ")";
      break;
    case PlanKind::kFilter:
      out << " (" << sql::ToSql(node.filter) << ")";
      break;
    case PlanKind::kHashJoin:
    case PlanKind::kNlJoin: {
      std::vector<std::string> keys;
      for (const auto& [l, r] : node.join_keys) {
        keys.push_back(l.FullName() + "=" + r.FullName());
      }
      if (!keys.empty()) out << " on " << Join(keys, " AND ");
      if (node.filter) out << " residual=(" << sql::ToSql(node.filter) << ")";
      break;
    }
    case PlanKind::kHashAggregate: {
      std::vector<std::string> groups;
      for (const auto& g : node.group_by) groups.push_back(g.FullName());
      if (!groups.empty()) out << " by " << Join(groups, ", ");
      break;
    }
    case PlanKind::kSort: {
      std::vector<std::string> keys;
      for (const auto& k : node.sort_keys) {
        keys.push_back(sql::ToSql(k.expr) + (k.ascending ? "" : " DESC"));
      }
      out << " by " << Join(keys, ", ");
      break;
    }
    case PlanKind::kLimit:
      out << " " << node.limit;
      break;
    case PlanKind::kRemote:
      out << " @" << node.remote_node << " (" << node.remote_sql << ")";
      break;
    default:
      break;
  }
  out << "  [rows=" << std::fixed << std::setprecision(0) << node.rows
      << " cost=" << std::setprecision(2) << node.cost << "ms]";
  out << "\n";
  for (const auto& child : node.children) {
    ExplainRec(*child, depth + 1, out);
  }
}

void CollectRemotesRec(const PlanNode& node,
                       std::vector<const PlanNode*>* out) {
  if (node.kind == PlanKind::kRemote) out->push_back(&node);
  for (const auto& child : node.children) CollectRemotesRec(*child, out);
}

}  // namespace

std::string Explain(const PlanPtr& plan) {
  if (!plan) return "(no plan)\n";
  std::ostringstream out;
  ExplainRec(*plan, 0, out);
  return out.str();
}

double TotalRemoteCost(const PlanPtr& plan) {
  double acc = 0;
  for (const PlanNode* remote : CollectRemotes(plan)) acc += remote->cost;
  return acc;
}

std::vector<const PlanNode*> CollectRemotes(const PlanPtr& plan) {
  std::vector<const PlanNode*> out;
  if (plan) CollectRemotesRec(*plan, &out);
  return out;
}

int PlanSize(const PlanPtr& plan) {
  if (!plan) return 0;
  int n = 1;
  for (const auto& child : plan->children) n += PlanSize(child);
  return n;
}

}  // namespace qtrade
