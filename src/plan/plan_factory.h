// Builders that construct PlanNodes with schema, row and cost estimates
// filled in consistently. All optimizers (seller DP, buyer assembler,
// baselines) go through this factory so their plans are comparable.
//
// Cost is cumulative work: sum of children costs plus this operator's own
// cost. This models the paper's single valuation number per plan; the
// trading layer may additionally rank offers by other properties.
#ifndef QTRADE_PLAN_PLAN_FACTORY_H_
#define QTRADE_PLAN_PLAN_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "plan/cost_model.h"
#include "plan/plan.h"

namespace qtrade {

/// Estimated average width in bytes of one tuple of `schema`.
double EstimateRowBytes(const TupleSchema& schema);

class PlanFactory {
 public:
  explicit PlanFactory(const CostModel* cost) : cost_(cost) {}

  /// Leaf scan over the union of `partition_ids` (all hosted locally),
  /// applying `filter`. `fragment_rows` is the size of the scanned
  /// fragments; `out_rows` the estimate after the filter.
  PlanPtr Scan(const std::string& table, const std::string& alias,
               TupleSchema schema, std::vector<std::string> partition_ids,
               sql::ExprPtr filter, double fragment_rows, double out_rows,
               double row_bytes) const;

  PlanPtr Filter(PlanPtr child, sql::ExprPtr predicate,
                 double out_rows) const;

  /// Pure projection (no aggregates in `outputs`).
  PlanPtr Project(PlanPtr child, std::vector<sql::BoundOutput> outputs) const;

  /// Equi-join; `residual` (may be null) is evaluated on joined rows.
  PlanPtr HashJoin(
      PlanPtr left, PlanPtr right,
      std::vector<std::pair<sql::BoundColumn, sql::BoundColumn>> keys,
      sql::ExprPtr residual, double out_rows) const;

  /// Fallback join for non-equi predicates.
  PlanPtr NlJoin(PlanPtr left, PlanPtr right, sql::ExprPtr predicate,
                 double out_rows) const;

  /// Grouped (or scalar, when `group_by` empty) hash aggregation.
  PlanPtr Aggregate(PlanPtr child, std::vector<sql::BoundOutput> outputs,
                    std::vector<sql::BoundColumn> group_by, sql::ExprPtr having,
                    double out_groups) const;

  PlanPtr Sort(PlanPtr child, std::vector<sql::OrderItem> keys) const;

  /// Bag union; all children must share arity (types checked upstream).
  PlanPtr UnionAll(std::vector<PlanPtr> children) const;

  /// Duplicate elimination over all columns.
  PlanPtr Dedup(PlanPtr child, double out_rows) const;

  PlanPtr Limit(PlanPtr child, int64_t n) const;

  /// Purchased query-answer: `quoted_cost` is the seller's offered total
  /// time (execution + transfer), taken at face value by the buyer.
  PlanPtr Remote(const std::string& node, const std::string& sql_text,
                 TupleSchema schema, double rows, double row_bytes,
                 double quoted_cost, const std::string& offer_id) const;

  const CostModel& cost_model() const { return *cost_; }

 private:
  const CostModel* cost_;
};

}  // namespace qtrade

#endif  // QTRADE_PLAN_PLAN_FACTORY_H_
