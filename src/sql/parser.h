// Recursive-descent parser for the supported SQL dialect.
#ifndef QTRADE_SQL_PARSER_H_
#define QTRADE_SQL_PARSER_H_

#include <string>

#include "sql/ast.h"
#include "util/status.h"

namespace qtrade::sql {

/// Parses a full query (SELECT block, or UNION [ALL] chain of blocks,
/// each optionally parenthesized). Trailing ';' is allowed.
Result<Query> ParseQuery(const std::string& text);

/// Parses a single scalar/boolean expression (used by tests and by the
/// catalog to declare partition predicates).
Result<ExprPtr> ParseExpression(const std::string& text);

}  // namespace qtrade::sql

#endif  // QTRADE_SQL_PARSER_H_
