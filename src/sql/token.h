// Token stream produced by the SQL lexer.
#ifndef QTRADE_SQL_TOKEN_H_
#define QTRADE_SQL_TOKEN_H_

#include <string>
#include <vector>

#include "types/value.h"

namespace qtrade::sql {

enum class TokenKind {
  kIdentifier,   // customer, invoiceline, c1
  kKeyword,      // SELECT, FROM, ... (text upper-cased)
  kIntLiteral,   // 42
  kDoubleLiteral,// 3.14
  kStringLiteral,// 'Myconos'
  kSymbol,       // ( ) , . * + - / ; = <> < <= > >=
  kEnd,
};

/// One lexical token with its source offset (for error messages).
struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;  // keyword/symbol text (normalized), identifier as written
  Value literal;     // for literal kinds
  size_t offset = 0;

  bool IsKeyword(const char* kw) const;
  bool IsSymbol(const char* sym) const;
};

/// True for words the lexer classifies as keywords (SELECT, WHERE, SUM, ...).
bool IsReservedWord(const std::string& upper);

}  // namespace qtrade::sql

#endif  // QTRADE_SQL_TOKEN_H_
