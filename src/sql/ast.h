// Abstract syntax tree for the supported SQL dialect: select-project-join
// queries with conjunctive predicates, aggregation/GROUP BY, ORDER BY and
// UNION [ALL] — exactly the query class the paper trades between nodes.
//
// Expressions are immutable and shared (ExprPtr = shared_ptr<const Expr>),
// so rewrites (seller partition restriction, buyer predicate analysis)
// structurally share unchanged subtrees.
#ifndef QTRADE_SQL_AST_H_
#define QTRADE_SQL_AST_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "types/value.h"

namespace qtrade::sql {

enum class ExprKind {
  kColumnRef,
  kLiteral,
  kBinary,
  kUnary,
  kAggregate,
  kStar,    // SELECT * / COUNT(*) argument
  kInList,  // <expr> [NOT] IN (v1, v2, ...)
};

enum class BinaryOp {
  kEq, kNe, kLt, kLe, kGt, kGe,  // comparisons
  kAnd, kOr,                     // boolean connectives
  kAdd, kSub, kMul, kDiv,        // arithmetic
};

enum class UnaryOp { kNot, kNeg };

enum class AggFunc { kSum, kCount, kAvg, kMin, kMax };

const char* BinaryOpSymbol(BinaryOp op);
const char* AggFuncName(AggFunc func);
/// True for =, <>, <, <=, >, >=.
bool IsComparison(BinaryOp op);
/// The comparison with operands swapped (a < b  <=>  b > a).
BinaryOp FlipComparison(BinaryOp op);

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// A node of the expression tree. Which fields are meaningful depends on
/// `kind`; use the factory functions below rather than filling it by hand.
struct Expr {
  ExprKind kind = ExprKind::kLiteral;

  // kColumnRef: qualifier (table alias; may be empty before binding) + column.
  std::string qualifier;
  std::string column;

  // kLiteral.
  Value literal;

  // kBinary (left, right) / kUnary (left only).
  BinaryOp bop = BinaryOp::kEq;
  UnaryOp uop = UnaryOp::kNot;
  ExprPtr left;
  ExprPtr right;

  // kAggregate: func/distinct; argument in `left` (null for COUNT(*)).
  AggFunc agg = AggFunc::kCount;
  bool distinct = false;

  // kInList: operand in `left`, constants in `in_values`.
  std::vector<Value> in_values;
  bool negated = false;
};

// ---- Factories ------------------------------------------------------------

ExprPtr Col(std::string qualifier, std::string column);
ExprPtr Col(std::string column);
ExprPtr Lit(Value v);
ExprPtr LitInt(int64_t v);
ExprPtr LitDouble(double v);
ExprPtr LitString(std::string v);
ExprPtr Binary(BinaryOp op, ExprPtr l, ExprPtr r);
ExprPtr Eq(ExprPtr l, ExprPtr r);
ExprPtr And(ExprPtr l, ExprPtr r);
ExprPtr Or(ExprPtr l, ExprPtr r);
ExprPtr Not(ExprPtr operand);
ExprPtr Neg(ExprPtr operand);
ExprPtr Agg(AggFunc func, ExprPtr arg, bool distinct = false);
ExprPtr CountStar();
ExprPtr Star();
ExprPtr InList(ExprPtr operand, std::vector<Value> values,
               bool negated = false);

/// Conjunction of `conjuncts`; nullptr when empty, the sole element when 1.
ExprPtr AndAll(const std::vector<ExprPtr>& conjuncts);

// ---- Statements -----------------------------------------------------------

/// Item of the SELECT list. `is_star` means bare `*`.
struct SelectItem {
  ExprPtr expr;       // null when is_star
  std::string alias;  // optional AS alias
  bool is_star = false;
};

/// FROM-list entry. `alias` defaults to the table name.
struct TableRef {
  std::string table;
  std::string alias;
};

struct OrderItem {
  ExprPtr expr;
  bool ascending = true;
};

/// One SELECT block.
struct SelectStmt {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  ExprPtr where;  // null when absent
  std::vector<ExprPtr> group_by;
  ExprPtr having;  // null when absent
  std::vector<OrderItem> order_by;
  std::optional<int64_t> limit;
};

/// A full query: one SELECT block, or several combined by UNION [ALL].
struct Query {
  std::vector<SelectStmt> branches;
  bool union_all = true;  // relevant when branches.size() > 1

  bool IsSimpleSelect() const { return branches.size() == 1; }
  const SelectStmt& select() const { return branches.front(); }
  SelectStmt& select() { return branches.front(); }
};

// ---- Utilities ------------------------------------------------------------

/// Renders an expression as SQL with minimal parentheses.
std::string ToSql(const Expr& expr);
std::string ToSql(const ExprPtr& expr);
std::string ToSql(const SelectStmt& stmt);
std::string ToSql(const Query& query);

/// Deep structural equality (literals compared by Value::Compare).
bool ExprEquals(const ExprPtr& a, const ExprPtr& b);
bool StmtEquals(const SelectStmt& a, const SelectStmt& b);
bool QueryEquals(const Query& a, const Query& b);

/// Calls `fn` for every kColumnRef node in the tree.
void ForEachColumnRef(const ExprPtr& expr,
                      const std::function<void(const Expr&)>& fn);

/// Returns a copy of `expr` where each column ref is replaced by
/// `fn(ref)` (return nullptr to keep the original node). Shares unchanged
/// subtrees with the input.
ExprPtr RewriteColumnRefs(const ExprPtr& expr,
                          const std::function<ExprPtr(const Expr&)>& fn);

/// True if the tree contains any aggregate function node.
bool ContainsAggregate(const ExprPtr& expr);

/// Splits a boolean expression into its top-level AND conjuncts.
std::vector<ExprPtr> SplitConjuncts(const ExprPtr& expr);

/// Collects the set of distinct table qualifiers referenced by the tree
/// (empty-qualifier refs are ignored; callers bind first).
std::vector<std::string> ReferencedQualifiers(const ExprPtr& expr);

}  // namespace qtrade::sql

#endif  // QTRADE_SQL_AST_H_
