#include "sql/parser.h"

#include <cassert>

#include "sql/lexer.h"
#include "util/strings.h"

namespace qtrade::sql {

namespace {

/// Token-stream cursor with the usual peek/advance/expect helpers.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Query> ParseQueryTop();
  Result<ExprPtr> ParseExprTop();

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    if (i >= tokens_.size()) i = tokens_.size() - 1;  // kEnd
    return tokens_[i];
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool AtEnd() const { return Peek().kind == TokenKind::kEnd; }

  bool MatchKeyword(const char* kw) {
    if (Peek().IsKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }
  bool MatchSymbol(const char* sym) {
    if (Peek().IsSymbol(sym)) {
      Advance();
      return true;
    }
    return false;
  }
  Status ExpectKeyword(const char* kw) {
    if (MatchKeyword(kw)) return Status::OK();
    return Error(std::string("expected keyword ") + kw);
  }
  Status ExpectSymbol(const char* sym) {
    if (MatchSymbol(sym)) return Status::OK();
    return Error(std::string("expected '") + sym + "'");
  }
  Status Error(const std::string& what) const {
    const Token& t = Peek();
    std::string got = t.kind == TokenKind::kEnd ? "end of input"
                                                : "'" + t.text + "'";
    return Status::ParseError(what + ", got " + got + " at offset " +
                              std::to_string(t.offset));
  }

  Result<SelectStmt> ParseSelect();
  Result<std::vector<SelectItem>> ParseSelectList();
  Result<std::vector<TableRef>> ParseFromList();
  Result<ExprPtr> ParseOr();
  Result<ExprPtr> ParseAnd();
  Result<ExprPtr> ParseNot();
  Result<ExprPtr> ParseComparison();
  Result<ExprPtr> ParseAdditive();
  Result<ExprPtr> ParseMultiplicative();
  Result<ExprPtr> ParseUnary();
  Result<ExprPtr> ParsePrimary();
  Result<Value> ParseLiteralValue();

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  // ON conditions of JOIN clauses in the current SELECT, merged into WHERE.
  std::vector<ExprPtr> join_conditions_;
};

Result<Query> Parser::ParseQueryTop() {
  Query query;
  while (true) {
    bool parenthesized = MatchSymbol("(");
    QTRADE_ASSIGN_OR_RETURN(SelectStmt stmt, ParseSelect());
    if (parenthesized) QTRADE_RETURN_IF_ERROR(ExpectSymbol(")"));
    query.branches.push_back(std::move(stmt));
    if (MatchKeyword("UNION")) {
      bool all = MatchKeyword("ALL");
      if (query.branches.size() == 1) {
        query.union_all = all;
      } else if (query.union_all != all) {
        return Status::Unsupported(
            "mixing UNION and UNION ALL in one chain is not supported");
      }
      continue;
    }
    break;
  }
  MatchSymbol(";");
  if (!AtEnd()) return Error("unexpected trailing input");
  return query;
}

Result<ExprPtr> Parser::ParseExprTop() {
  QTRADE_ASSIGN_OR_RETURN(ExprPtr e, ParseOr());
  if (!AtEnd()) return Error("unexpected trailing input");
  return e;
}

Result<SelectStmt> Parser::ParseSelect() {
  SelectStmt stmt;
  QTRADE_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
  if (MatchKeyword("DISTINCT")) stmt.distinct = true;
  else MatchKeyword("ALL");
  QTRADE_ASSIGN_OR_RETURN(stmt.items, ParseSelectList());
  QTRADE_RETURN_IF_ERROR(ExpectKeyword("FROM"));
  join_conditions_.clear();
  QTRADE_ASSIGN_OR_RETURN(stmt.from, ParseFromList());
  std::vector<ExprPtr> conjuncts = std::move(join_conditions_);
  join_conditions_.clear();
  if (MatchKeyword("WHERE")) {
    QTRADE_ASSIGN_OR_RETURN(ExprPtr where, ParseOr());
    conjuncts.push_back(std::move(where));
  }
  stmt.where = AndAll(conjuncts);
  if (MatchKeyword("GROUP")) {
    QTRADE_RETURN_IF_ERROR(ExpectKeyword("BY"));
    do {
      QTRADE_ASSIGN_OR_RETURN(ExprPtr e, ParseAdditive());
      stmt.group_by.push_back(std::move(e));
    } while (MatchSymbol(","));
  }
  if (MatchKeyword("HAVING")) {
    QTRADE_ASSIGN_OR_RETURN(stmt.having, ParseOr());
  }
  if (MatchKeyword("ORDER")) {
    QTRADE_RETURN_IF_ERROR(ExpectKeyword("BY"));
    do {
      OrderItem item;
      QTRADE_ASSIGN_OR_RETURN(item.expr, ParseAdditive());
      if (MatchKeyword("DESC")) item.ascending = false;
      else MatchKeyword("ASC");
      stmt.order_by.push_back(std::move(item));
    } while (MatchSymbol(","));
  }
  if (MatchKeyword("LIMIT")) {
    if (Peek().kind != TokenKind::kIntLiteral) {
      return Error("expected integer after LIMIT");
    }
    stmt.limit = Advance().literal.int64();
  }
  return stmt;
}

Result<std::vector<SelectItem>> Parser::ParseSelectList() {
  std::vector<SelectItem> items;
  do {
    SelectItem item;
    if (Peek().IsSymbol("*")) {
      Advance();
      item.is_star = true;
    } else {
      QTRADE_ASSIGN_OR_RETURN(item.expr, ParseAdditive());
      if (MatchKeyword("AS")) {
        if (Peek().kind != TokenKind::kIdentifier) {
          return Error("expected alias after AS");
        }
        item.alias = Advance().text;
      } else if (Peek().kind == TokenKind::kIdentifier) {
        item.alias = Advance().text;
      }
    }
    items.push_back(std::move(item));
  } while (MatchSymbol(","));
  if (items.empty()) return Error("empty select list");
  return items;
}

Result<std::vector<TableRef>> Parser::ParseFromList() {
  std::vector<TableRef> tables;
  auto parse_table = [&]() -> Status {
    if (Peek().kind != TokenKind::kIdentifier) {
      return Error("expected table name");
    }
    TableRef ref;
    ref.table = Advance().text;
    if (MatchKeyword("AS")) {
      if (Peek().kind != TokenKind::kIdentifier) {
        return Error("expected alias after AS");
      }
      ref.alias = Advance().text;
    } else if (Peek().kind == TokenKind::kIdentifier) {
      ref.alias = Advance().text;
    } else {
      ref.alias = ref.table;
    }
    tables.push_back(std::move(ref));
    return Status::OK();
  };
  QTRADE_RETURN_IF_ERROR(parse_table());
  while (true) {
    if (MatchSymbol(",")) {
      QTRADE_RETURN_IF_ERROR(parse_table());
      continue;
    }
    // [INNER] JOIN <table> ON <pred>: desugared into the FROM list plus a
    // WHERE conjunct (collected in join_conditions_).
    bool inner = Peek().IsKeyword("INNER");
    if (inner || Peek().IsKeyword("JOIN")) {
      if (inner) {
        Advance();
        if (!Peek().IsKeyword("JOIN")) return Error("expected JOIN");
      }
      Advance();  // JOIN
      QTRADE_RETURN_IF_ERROR(parse_table());
      QTRADE_RETURN_IF_ERROR(ExpectKeyword("ON"));
      QTRADE_ASSIGN_OR_RETURN(ExprPtr condition, ParseOr());
      join_conditions_.push_back(std::move(condition));
      continue;
    }
    break;
  }
  return tables;
}

Result<ExprPtr> Parser::ParseOr() {
  QTRADE_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
  while (MatchKeyword("OR")) {
    QTRADE_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
    left = Or(std::move(left), std::move(right));
  }
  return left;
}

Result<ExprPtr> Parser::ParseAnd() {
  QTRADE_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
  while (MatchKeyword("AND")) {
    QTRADE_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
    left = And(std::move(left), std::move(right));
  }
  return left;
}

Result<ExprPtr> Parser::ParseNot() {
  if (MatchKeyword("NOT")) {
    QTRADE_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
    return Not(std::move(operand));
  }
  return ParseComparison();
}

Result<ExprPtr> Parser::ParseComparison() {
  QTRADE_ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());
  // <expr> [NOT] IN (v, ...)
  bool negated = false;
  size_t saved = pos_;
  if (MatchKeyword("NOT")) {
    if (Peek().IsKeyword("IN") || Peek().IsKeyword("BETWEEN")) {
      negated = true;
    } else {
      pos_ = saved;  // NOT belongs to an enclosing context
      return left;
    }
  }
  if (MatchKeyword("IN")) {
    QTRADE_RETURN_IF_ERROR(ExpectSymbol("("));
    std::vector<Value> values;
    do {
      QTRADE_ASSIGN_OR_RETURN(Value v, ParseLiteralValue());
      values.push_back(std::move(v));
    } while (MatchSymbol(","));
    QTRADE_RETURN_IF_ERROR(ExpectSymbol(")"));
    return InList(std::move(left), std::move(values), negated);
  }
  if (MatchKeyword("BETWEEN")) {
    // Desugar: x BETWEEN a AND b  ->  x >= a AND x <= b.
    QTRADE_ASSIGN_OR_RETURN(ExprPtr lo, ParseAdditive());
    QTRADE_RETURN_IF_ERROR(ExpectKeyword("AND"));
    QTRADE_ASSIGN_OR_RETURN(ExprPtr hi, ParseAdditive());
    ExprPtr range = And(Binary(BinaryOp::kGe, left, std::move(lo)),
                        Binary(BinaryOp::kLe, left, std::move(hi)));
    return negated ? Not(std::move(range)) : range;
  }
  if (MatchKeyword("IS")) {
    bool is_not = MatchKeyword("NOT");
    QTRADE_RETURN_IF_ERROR(ExpectKeyword("NULL"));
    // Model IS [NOT] NULL as (NOT) x = NULL; the evaluator special-cases
    // literal-NULL equality as a null test.
    ExprPtr test = Eq(left, Lit(Value::Null()));
    return is_not ? Not(std::move(test)) : test;
  }
  static const struct {
    const char* sym;
    BinaryOp op;
  } kOps[] = {{"=", BinaryOp::kEq},  {"<>", BinaryOp::kNe},
              {"<=", BinaryOp::kLe}, {">=", BinaryOp::kGe},
              {"<", BinaryOp::kLt},  {">", BinaryOp::kGt}};
  for (const auto& entry : kOps) {
    if (MatchSymbol(entry.sym)) {
      QTRADE_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
      return Binary(entry.op, std::move(left), std::move(right));
    }
  }
  return left;
}

Result<ExprPtr> Parser::ParseAdditive() {
  QTRADE_ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative());
  while (true) {
    if (MatchSymbol("+")) {
      QTRADE_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
      left = Binary(BinaryOp::kAdd, std::move(left), std::move(right));
    } else if (MatchSymbol("-")) {
      QTRADE_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
      left = Binary(BinaryOp::kSub, std::move(left), std::move(right));
    } else {
      return left;
    }
  }
}

Result<ExprPtr> Parser::ParseMultiplicative() {
  QTRADE_ASSIGN_OR_RETURN(ExprPtr left, ParseUnary());
  while (true) {
    if (MatchSymbol("*")) {
      QTRADE_ASSIGN_OR_RETURN(ExprPtr right, ParseUnary());
      left = Binary(BinaryOp::kMul, std::move(left), std::move(right));
    } else if (MatchSymbol("/")) {
      QTRADE_ASSIGN_OR_RETURN(ExprPtr right, ParseUnary());
      left = Binary(BinaryOp::kDiv, std::move(left), std::move(right));
    } else {
      return left;
    }
  }
}

Result<ExprPtr> Parser::ParseUnary() {
  if (MatchSymbol("-")) {
    QTRADE_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
    if (operand->kind == ExprKind::kLiteral && operand->literal.is_int64()) {
      return LitInt(-operand->literal.int64());
    }
    if (operand->kind == ExprKind::kLiteral && operand->literal.is_double()) {
      return LitDouble(-operand->literal.dbl());
    }
    return Neg(std::move(operand));
  }
  MatchSymbol("+");
  return ParsePrimary();
}

Result<ExprPtr> Parser::ParsePrimary() {
  const Token& tok = Peek();
  switch (tok.kind) {
    case TokenKind::kIntLiteral:
    case TokenKind::kDoubleLiteral:
    case TokenKind::kStringLiteral:
      Advance();
      return Lit(tok.literal);
    case TokenKind::kKeyword: {
      if (tok.text == "NULL") {
        Advance();
        return Lit(Value::Null());
      }
      if (tok.text == "TRUE" || tok.text == "FALSE") {
        Advance();
        return Lit(tok.literal);
      }
      static const struct {
        const char* name;
        AggFunc func;
      } kAggs[] = {{"SUM", AggFunc::kSum},
                   {"COUNT", AggFunc::kCount},
                   {"AVG", AggFunc::kAvg},
                   {"MIN", AggFunc::kMin},
                   {"MAX", AggFunc::kMax}};
      for (const auto& entry : kAggs) {
        if (tok.text == entry.name) {
          Advance();
          QTRADE_RETURN_IF_ERROR(ExpectSymbol("("));
          bool distinct = MatchKeyword("DISTINCT");
          ExprPtr arg;
          if (MatchSymbol("*")) {
            if (entry.func != AggFunc::kCount) {
              return Error("only COUNT accepts *");
            }
          } else {
            QTRADE_ASSIGN_OR_RETURN(arg, ParseAdditive());
          }
          QTRADE_RETURN_IF_ERROR(ExpectSymbol(")"));
          return Agg(entry.func, std::move(arg), distinct);
        }
      }
      return Error("unexpected keyword in expression");
    }
    case TokenKind::kIdentifier: {
      Advance();
      std::string first = tok.text;
      if (MatchSymbol(".")) {
        if (Peek().IsSymbol("*")) {
          // t.* is not supported; callers use bare *.
          return Error("qualified * is not supported");
        }
        if (Peek().kind != TokenKind::kIdentifier) {
          return Error("expected column name after '.'");
        }
        std::string column = Advance().text;
        return Col(first, column);
      }
      return Col(first);
    }
    case TokenKind::kSymbol:
      if (tok.IsSymbol("(")) {
        Advance();
        QTRADE_ASSIGN_OR_RETURN(ExprPtr inner, ParseOr());
        QTRADE_RETURN_IF_ERROR(ExpectSymbol(")"));
        return inner;
      }
      return Error("unexpected symbol in expression");
    case TokenKind::kEnd:
      return Error("unexpected end of expression");
  }
  return Error("unexpected token");
}

Result<Value> Parser::ParseLiteralValue() {
  bool negative = MatchSymbol("-");
  const Token& tok = Peek();
  switch (tok.kind) {
    case TokenKind::kIntLiteral:
      Advance();
      return Value::Int64(negative ? -tok.literal.int64()
                                   : tok.literal.int64());
    case TokenKind::kDoubleLiteral:
      Advance();
      return Value::Double(negative ? -tok.literal.dbl() : tok.literal.dbl());
    case TokenKind::kStringLiteral:
      if (negative) return Error("cannot negate a string literal");
      Advance();
      return tok.literal;
    case TokenKind::kKeyword:
      if (!negative && tok.text == "NULL") {
        Advance();
        return Value::Null();
      }
      if (!negative && (tok.text == "TRUE" || tok.text == "FALSE")) {
        Advance();
        return tok.literal;
      }
      return Error("expected literal value");
    default:
      return Error("expected literal value");
  }
}

}  // namespace

Result<Query> ParseQuery(const std::string& text) {
  QTRADE_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  Parser parser(std::move(tokens));
  return parser.ParseQueryTop();
}

Result<ExprPtr> ParseExpression(const std::string& text) {
  QTRADE_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  Parser parser(std::move(tokens));
  return parser.ParseExprTop();
}

}  // namespace qtrade::sql
