#include "sql/lexer.h"

#include <cctype>
#include <unordered_set>

#include "util/strings.h"

namespace qtrade::sql {

namespace {

const std::unordered_set<std::string>& ReservedWords() {
  static const std::unordered_set<std::string>* kWords =
      new std::unordered_set<std::string>({
          "SELECT", "FROM",  "WHERE",  "GROUP",  "BY",     "HAVING",
          "ORDER",  "ASC",   "DESC",   "AND",    "OR",     "NOT",
          "IN",     "BETWEEN", "AS",   "DISTINCT", "ALL",  "UNION",
          "SUM",    "COUNT", "AVG",    "MIN",    "MAX",    "NULL",
          "JOIN",   "INNER", "ON",
          "TRUE",   "FALSE", "IS",     "LIMIT",
      });
  return *kWords;
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

bool IsReservedWord(const std::string& upper) {
  return ReservedWords().count(upper) > 0;
}

bool Token::IsKeyword(const char* kw) const {
  return kind == TokenKind::kKeyword && text == kw;
}

bool Token::IsSymbol(const char* sym) const {
  return kind == TokenKind::kSymbol && text == sym;
}

Result<std::vector<Token>> Lex(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token tok;
    tok.offset = i;
    // Comments: -- to end of line.
    if (c == '-' && i + 1 < n && input[i + 1] == '-') {
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(input[i])) ++i;
      std::string word = input.substr(start, i - start);
      std::string upper = ToUpper(word);
      if (IsReservedWord(upper)) {
        if (upper == "TRUE" || upper == "FALSE") {
          tok.kind = TokenKind::kKeyword;
          tok.text = upper;
          tok.literal = Value::Bool(upper == "TRUE");
        } else {
          tok.kind = TokenKind::kKeyword;
          tok.text = upper;
        }
      } else {
        tok.kind = TokenKind::kIdentifier;
        tok.text = ToLower(word);  // identifiers are case-insensitive
      }
      tokens.push_back(std::move(tok));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      size_t start = i;
      bool is_double = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      if (i < n && input[i] == '.' && i + 1 < n &&
          std::isdigit(static_cast<unsigned char>(input[i + 1]))) {
        is_double = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) {
          ++i;
        }
      }
      if (i < n && (input[i] == 'e' || input[i] == 'E')) {
        size_t j = i + 1;
        if (j < n && (input[j] == '+' || input[j] == '-')) ++j;
        if (j < n && std::isdigit(static_cast<unsigned char>(input[j]))) {
          is_double = true;
          i = j;
          while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) {
            ++i;
          }
        }
      }
      std::string num = input.substr(start, i - start);
      tok.text = num;
      if (is_double) {
        tok.kind = TokenKind::kDoubleLiteral;
        tok.literal = Value::Double(std::stod(num));
      } else {
        tok.kind = TokenKind::kIntLiteral;
        tok.literal = Value::Int64(std::stoll(num));
      }
      tokens.push_back(std::move(tok));
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string text;
      bool closed = false;
      while (i < n) {
        if (input[i] == '\'') {
          if (i + 1 < n && input[i + 1] == '\'') {  // escaped quote
            text.push_back('\'');
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        text.push_back(input[i]);
        ++i;
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(tok.offset));
      }
      tok.kind = TokenKind::kStringLiteral;
      tok.text = text;
      tok.literal = Value::String(text);
      tokens.push_back(std::move(tok));
      continue;
    }
    // Multi-char operators first.
    auto push_symbol = [&](const std::string& sym) {
      tok.kind = TokenKind::kSymbol;
      tok.text = sym;
      tokens.push_back(tok);
      i += sym.size();
    };
    if (c == '<') {
      if (i + 1 < n && input[i + 1] == '=') {
        push_symbol("<=");
      } else if (i + 1 < n && input[i + 1] == '>') {
        push_symbol("<>");
      } else {
        push_symbol("<");
      }
      continue;
    }
    if (c == '>') {
      if (i + 1 < n && input[i + 1] == '=') {
        push_symbol(">=");
      } else {
        push_symbol(">");
      }
      continue;
    }
    if (c == '!' && i + 1 < n && input[i + 1] == '=') {
      tok.kind = TokenKind::kSymbol;
      tok.text = "<>";
      tokens.push_back(tok);
      i += 2;
      continue;
    }
    static const std::string kSingles = "(),.*+-/;=";
    if (kSingles.find(c) != std::string::npos) {
      push_symbol(std::string(1, c));
      continue;
    }
    return Status::ParseError(std::string("unexpected character '") + c +
                              "' at offset " + std::to_string(i));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.offset = n;
  tokens.push_back(end);
  return tokens;
}

}  // namespace qtrade::sql
