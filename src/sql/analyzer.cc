#include "sql/analyzer.h"

#include <algorithm>
#include <map>
#include <set>

#include "sql/parser.h"
#include "util/strings.h"

namespace qtrade::sql {

namespace {

/// Binding context: alias -> table definition.
class Scope {
 public:
  Scope(const std::vector<TableRef>& tables, const SchemaProvider& schemas)
      : schemas_(schemas) {
    for (const auto& ref : tables) {
      aliases_.emplace_back(ToLower(ref.alias.empty() ? ref.table : ref.alias),
                            ref.table);
    }
  }

  Status Validate() const {
    std::set<std::string> seen;
    for (const auto& [alias, table] : aliases_) {
      if (!seen.insert(alias).second) {
        return Status::BindError("duplicate table alias: " + alias);
      }
      if (schemas_.FindTable(table) == nullptr) {
        return Status::BindError("unknown table: " + table);
      }
    }
    return Status::OK();
  }

  /// Resolves (qualifier, column) to a BoundColumn.
  Result<BoundColumn> Resolve(const std::string& qualifier,
                              const std::string& column) const {
    BoundColumn out;
    int matches = 0;
    for (const auto& [alias, table] : aliases_) {
      if (!qualifier.empty() && alias != qualifier) continue;
      const TableDef* def = schemas_.FindTable(table);
      if (def == nullptr) continue;
      auto idx = def->FindColumn(column);
      if (!idx.ok()) continue;
      ++matches;
      out.alias = alias;
      out.column = ToLower(column);
      out.type = def->columns[idx.value()].type;
    }
    if (matches == 0) {
      std::string full = qualifier.empty() ? column : qualifier + "." + column;
      return Status::BindError("unknown column: " + full);
    }
    if (matches > 1) {
      return Status::BindError("ambiguous column: " + column);
    }
    return out;
  }

  const std::vector<std::pair<std::string, std::string>>& aliases() const {
    return aliases_;
  }

  const SchemaProvider& schemas() const { return schemas_; }

 private:
  const SchemaProvider& schemas_;
  // (alias, table) in FROM order.
  std::vector<std::pair<std::string, std::string>> aliases_;
};

/// Rewrites all column refs in `expr` to fully-qualified form.
Result<ExprPtr> QualifyRefs(const ExprPtr& expr, const Scope& scope) {
  Status error = Status::OK();
  ExprPtr out = RewriteColumnRefs(expr, [&](const Expr& ref) -> ExprPtr {
    auto bound = scope.Resolve(ref.qualifier, ref.column);
    if (!bound.ok()) {
      if (error.ok()) error = bound.status();
      return nullptr;
    }
    if (ref.qualifier == bound->alias) return nullptr;  // already qualified
    return Col(bound->alias, bound->column);
  });
  if (!error.ok()) return error;
  return out;
}

Result<TypeKind> InferTypeImpl(const ExprPtr& expr, const Scope& scope) {
  if (!expr) return Status::Internal("null expression in type inference");
  switch (expr->kind) {
    case ExprKind::kColumnRef: {
      QTRADE_ASSIGN_OR_RETURN(BoundColumn col,
                              scope.Resolve(expr->qualifier, expr->column));
      return col.type;
    }
    case ExprKind::kLiteral: {
      if (expr->literal.is_null()) return TypeKind::kString;  // untyped NULL
      return expr->literal.Kind();
    }
    case ExprKind::kBinary: {
      if (expr->bop == BinaryOp::kAnd || expr->bop == BinaryOp::kOr ||
          IsComparison(expr->bop)) {
        return TypeKind::kBool;
      }
      QTRADE_ASSIGN_OR_RETURN(TypeKind lt, InferTypeImpl(expr->left, scope));
      QTRADE_ASSIGN_OR_RETURN(TypeKind rt, InferTypeImpl(expr->right, scope));
      if (expr->bop == BinaryOp::kDiv) return TypeKind::kDouble;
      if (lt == TypeKind::kDouble || rt == TypeKind::kDouble) {
        return TypeKind::kDouble;
      }
      if (lt == TypeKind::kInt64 && rt == TypeKind::kInt64) {
        return TypeKind::kInt64;
      }
      return Status::BindError("arithmetic on non-numeric operands: " +
                               ToSql(expr));
    }
    case ExprKind::kUnary:
      if (expr->uop == UnaryOp::kNot) return TypeKind::kBool;
      return InferTypeImpl(expr->left, scope);
    case ExprKind::kAggregate:
      switch (expr->agg) {
        case AggFunc::kCount:
          return TypeKind::kInt64;
        case AggFunc::kAvg:
          return TypeKind::kDouble;
        case AggFunc::kSum: {
          QTRADE_ASSIGN_OR_RETURN(TypeKind t,
                                  InferTypeImpl(expr->left, scope));
          if (t != TypeKind::kInt64 && t != TypeKind::kDouble) {
            return Status::BindError("SUM over non-numeric argument");
          }
          return t;
        }
        case AggFunc::kMin:
        case AggFunc::kMax:
          return InferTypeImpl(expr->left, scope);
      }
      return Status::Internal("unknown aggregate");
    case ExprKind::kStar:
      return Status::BindError("* not allowed in this context");
    case ExprKind::kInList:
      return TypeKind::kBool;
  }
  return Status::Internal("unknown expression kind");
}

/// Collects distinct referenced aliases (refs are qualified by now).
std::vector<std::string> AliasesOf(const ExprPtr& expr) {
  return ReferencedQualifiers(expr);
}

/// Classifies one WHERE conjunct.
Conjunct ClassifyConjunct(ExprPtr expr, const Scope& scope) {
  Conjunct c;
  c.expr = std::move(expr);
  c.aliases = AliasesOf(c.expr);
  if (c.aliases.size() <= 1) {
    c.kind = ConjunctKind::kLocal;
    return c;
  }
  // alias1.col = alias2.col with different aliases?
  const Expr& e = *c.expr;
  if (e.kind == ExprKind::kBinary && e.bop == BinaryOp::kEq &&
      e.left->kind == ExprKind::kColumnRef &&
      e.right->kind == ExprKind::kColumnRef &&
      e.left->qualifier != e.right->qualifier) {
    c.kind = ConjunctKind::kEquiJoin;
    auto l = scope.Resolve(e.left->qualifier, e.left->column);
    auto r = scope.Resolve(e.right->qualifier, e.right->column);
    if (l.ok() && r.ok()) {
      c.left = *l;
      c.right = *r;
      return c;
    }
  }
  c.kind = ConjunctKind::kOtherJoin;
  return c;
}

/// Derives an output column name for an expression without an alias.
std::string DeriveName(const ExprPtr& expr, size_t index) {
  if (expr->kind == ExprKind::kColumnRef) return expr->column;
  if (expr->kind == ExprKind::kAggregate) {
    std::string base = ToLower(AggFuncName(expr->agg));
    if (expr->left && expr->left->kind == ExprKind::kColumnRef) {
      return base + "_" + expr->left->column;
    }
    return base;
  }
  return "expr_" + std::to_string(index);
}

/// True when `expr`, outside of aggregate functions, references only
/// columns present in `group_by`.
bool OnlyGroupedRefs(const ExprPtr& expr,
                     const std::vector<BoundColumn>& group_by) {
  if (!expr) return true;
  if (expr->kind == ExprKind::kAggregate) return true;  // inside agg is fine
  if (expr->kind == ExprKind::kColumnRef) {
    for (const auto& g : group_by) {
      if (g.alias == expr->qualifier && g.column == expr->column) return true;
    }
    return false;
  }
  return OnlyGroupedRefs(expr->left, group_by) &&
         OnlyGroupedRefs(expr->right, group_by);
}

}  // namespace

TupleSchema BoundQuery::OutputSchema() const {
  TupleSchema schema;
  for (const auto& out : outputs) {
    TupleColumn col;
    col.name = out.name;
    col.type = out.type;
    // Single-column passthrough keeps its qualifier so joins above can
    // still address it.
    if (out.expr->kind == ExprKind::kColumnRef) {
      col.qualifier = out.expr->qualifier;
    }
    schema.AddColumn(std::move(col));
  }
  return schema;
}

const TableRef* BoundQuery::FindTable(const std::string& alias) const {
  for (const auto& t : tables) {
    if (EqualsIgnoreCase(t.alias, alias)) return &t;
  }
  return nullptr;
}

SelectStmt BoundQuery::ToStmt() const {
  SelectStmt stmt;
  stmt.distinct = distinct;
  stmt.limit = limit;
  for (const auto& out : outputs) {
    SelectItem item;
    item.expr = out.expr;
    // Keep explicit alias only when it differs from the bare rendering.
    if (!(out.expr->kind == ExprKind::kColumnRef &&
          out.expr->column == out.name)) {
      item.alias = out.name;
    }
    stmt.items.push_back(std::move(item));
  }
  stmt.from = tables;
  std::vector<ExprPtr> exprs;
  exprs.reserve(conjuncts.size());
  for (const auto& c : conjuncts) exprs.push_back(c.expr);
  stmt.where = AndAll(exprs);
  for (const auto& g : group_by) {
    stmt.group_by.push_back(Col(g.alias, g.column));
  }
  stmt.having = having;
  stmt.order_by = order_by;
  return stmt;
}

std::vector<ExprPtr> BoundQuery::LocalPredicates(
    const std::string& alias) const {
  std::vector<ExprPtr> out;
  for (const auto& c : conjuncts) {
    if (c.kind != ConjunctKind::kLocal) continue;
    if (c.aliases.empty() ||
        (c.aliases.size() == 1 && c.aliases[0] == alias)) {
      out.push_back(c.expr);
    }
  }
  return out;
}

std::vector<const Conjunct*> BoundQuery::JoinPredicates() const {
  std::vector<const Conjunct*> out;
  for (const auto& c : conjuncts) {
    if (c.kind == ConjunctKind::kEquiJoin) out.push_back(&c);
  }
  return out;
}

Result<BoundQuery> Analyze(const SelectStmt& stmt,
                           const SchemaProvider& schemas) {
  if (stmt.from.empty()) {
    return Status::BindError("query has no FROM clause");
  }
  Scope scope(stmt.from, schemas);
  QTRADE_RETURN_IF_ERROR(scope.Validate());

  BoundQuery bound;
  bound.distinct = stmt.distinct;
  bound.limit = stmt.limit;
  for (const auto& ref : stmt.from) {
    TableRef norm;
    norm.table = ToLower(ref.table);
    norm.alias = ToLower(ref.alias.empty() ? ref.table : ref.alias);
    bound.tables.push_back(std::move(norm));
  }

  // WHERE conjuncts.
  if (stmt.where) {
    if (ContainsAggregate(stmt.where)) {
      return Status::BindError("aggregates are not allowed in WHERE");
    }
    QTRADE_ASSIGN_OR_RETURN(ExprPtr where, QualifyRefs(stmt.where, scope));
    for (auto& conj : SplitConjuncts(where)) {
      bound.conjuncts.push_back(ClassifyConjunct(std::move(conj), scope));
    }
  }

  // GROUP BY columns must be plain column refs.
  for (const auto& g : stmt.group_by) {
    QTRADE_ASSIGN_OR_RETURN(ExprPtr q, QualifyRefs(g, scope));
    if (q->kind != ExprKind::kColumnRef) {
      return Status::Unsupported("GROUP BY supports plain columns only: " +
                                 ToSql(q));
    }
    QTRADE_ASSIGN_OR_RETURN(BoundColumn col,
                            scope.Resolve(q->qualifier, q->column));
    bound.group_by.push_back(std::move(col));
  }

  // SELECT list with star expansion.
  size_t index = 0;
  for (const auto& item : stmt.items) {
    if (item.is_star) {
      for (const auto& [alias, table] : scope.aliases()) {
        const TableDef* def = schemas.FindTable(table);
        for (const auto& col : def->columns) {
          BoundOutput out;
          out.expr = Col(alias, col.name);
          out.name = ToLower(col.name);
          out.type = col.type;
          bound.outputs.push_back(std::move(out));
        }
      }
      continue;
    }
    BoundOutput out;
    QTRADE_ASSIGN_OR_RETURN(out.expr, QualifyRefs(item.expr, scope));
    out.is_aggregate = ContainsAggregate(out.expr);
    out.name = item.alias.empty() ? DeriveName(out.expr, index)
                                  : ToLower(item.alias);
    QTRADE_ASSIGN_OR_RETURN(out.type, InferTypeImpl(out.expr, scope));
    bound.outputs.push_back(std::move(out));
    ++index;
  }

  bound.has_aggregates =
      std::any_of(bound.outputs.begin(), bound.outputs.end(),
                  [](const BoundOutput& o) { return o.is_aggregate; });

  // HAVING.
  if (stmt.having) {
    QTRADE_ASSIGN_OR_RETURN(bound.having, QualifyRefs(stmt.having, scope));
    if (!bound.has_aggregates && bound.group_by.empty()) {
      return Status::BindError("HAVING requires aggregation");
    }
  }

  // Aggregate/GROUP BY consistency.
  if (bound.has_aggregates || !bound.group_by.empty()) {
    for (const auto& out : bound.outputs) {
      if (!OnlyGroupedRefs(out.expr, bound.group_by)) {
        return Status::BindError(
            "non-aggregated output must appear in GROUP BY: " + out.name);
      }
    }
    if (bound.having && !OnlyGroupedRefs(bound.having, bound.group_by)) {
      return Status::BindError(
          "HAVING references a column outside GROUP BY");
    }
  }

  // ORDER BY. A bare identifier first resolves against SELECT-list aliases
  // (standard SQL), then against table columns.
  for (const auto& item : stmt.order_by) {
    OrderItem bound_item;
    bound_item.ascending = item.ascending;
    const BoundOutput* matched = nullptr;
    if (item.expr->kind == ExprKind::kColumnRef &&
        item.expr->qualifier.empty()) {
      for (const auto& out : bound.outputs) {
        if (EqualsIgnoreCase(out.name, item.expr->column)) {
          matched = &out;
          break;
        }
      }
    }
    if (matched != nullptr) {
      bound_item.expr = matched->expr;
    } else {
      QTRADE_ASSIGN_OR_RETURN(bound_item.expr, QualifyRefs(item.expr, scope));
    }
    bound.order_by.push_back(std::move(bound_item));
  }

  return bound;
}

Result<BoundQuery> AnalyzeSql(const std::string& text,
                              const SchemaProvider& schemas) {
  QTRADE_ASSIGN_OR_RETURN(Query query, ParseQuery(text));
  if (!query.IsSimpleSelect()) {
    return Status::Unsupported("expected a single SELECT block");
  }
  return Analyze(query.select(), schemas);
}

Result<TypeKind> InferType(const ExprPtr& expr, const BoundQuery& query,
                           const SchemaProvider& schemas) {
  Scope scope(query.tables, schemas);
  return InferTypeImpl(expr, scope);
}

}  // namespace qtrade::sql
