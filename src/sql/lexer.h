// Hand-written SQL lexer. Queries, RFBs and offers travel between nodes as
// SQL text, so lexing/parsing is on the optimization hot path.
#ifndef QTRADE_SQL_LEXER_H_
#define QTRADE_SQL_LEXER_H_

#include <string>
#include <vector>

#include "sql/token.h"
#include "util/status.h"

namespace qtrade::sql {

/// Tokenizes `input`; the resulting vector always ends with a kEnd token.
Result<std::vector<Token>> Lex(const std::string& input);

}  // namespace qtrade::sql

#endif  // QTRADE_SQL_LEXER_H_
