#include "sql/ast.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <sstream>

#include "util/strings.h"

namespace qtrade::sql {

const char* BinaryOpSymbol(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNe: return "<>";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAnd: return "AND";
    case BinaryOp::kOr: return "OR";
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
  }
  return "?";
}

const char* AggFuncName(AggFunc func) {
  switch (func) {
    case AggFunc::kSum: return "SUM";
    case AggFunc::kCount: return "COUNT";
    case AggFunc::kAvg: return "AVG";
    case AggFunc::kMin: return "MIN";
    case AggFunc::kMax: return "MAX";
  }
  return "?";
}

bool IsComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

BinaryOp FlipComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLt: return BinaryOp::kGt;
    case BinaryOp::kLe: return BinaryOp::kGe;
    case BinaryOp::kGt: return BinaryOp::kLt;
    case BinaryOp::kGe: return BinaryOp::kLe;
    default: return op;  // =, <> are symmetric
  }
}

// ---- Factories ------------------------------------------------------------

namespace {
std::shared_ptr<Expr> Make(ExprKind kind) {
  auto e = std::make_shared<Expr>();
  e->kind = kind;
  return e;
}
}  // namespace

ExprPtr Col(std::string qualifier, std::string column) {
  auto e = Make(ExprKind::kColumnRef);
  e->qualifier = ToLower(qualifier);
  e->column = ToLower(column);
  return e;
}

ExprPtr Col(std::string column) { return Col("", std::move(column)); }

ExprPtr Lit(Value v) {
  auto e = Make(ExprKind::kLiteral);
  e->literal = std::move(v);
  return e;
}

ExprPtr LitInt(int64_t v) { return Lit(Value::Int64(v)); }
ExprPtr LitDouble(double v) { return Lit(Value::Double(v)); }
ExprPtr LitString(std::string v) { return Lit(Value::String(std::move(v))); }

ExprPtr Binary(BinaryOp op, ExprPtr l, ExprPtr r) {
  assert(l && r);
  auto e = Make(ExprKind::kBinary);
  e->bop = op;
  e->left = std::move(l);
  e->right = std::move(r);
  return e;
}

ExprPtr Eq(ExprPtr l, ExprPtr r) {
  return Binary(BinaryOp::kEq, std::move(l), std::move(r));
}
ExprPtr And(ExprPtr l, ExprPtr r) {
  return Binary(BinaryOp::kAnd, std::move(l), std::move(r));
}
ExprPtr Or(ExprPtr l, ExprPtr r) {
  return Binary(BinaryOp::kOr, std::move(l), std::move(r));
}

ExprPtr Not(ExprPtr operand) {
  auto e = Make(ExprKind::kUnary);
  e->uop = UnaryOp::kNot;
  e->left = std::move(operand);
  return e;
}

ExprPtr Neg(ExprPtr operand) {
  auto e = Make(ExprKind::kUnary);
  e->uop = UnaryOp::kNeg;
  e->left = std::move(operand);
  return e;
}

ExprPtr Agg(AggFunc func, ExprPtr arg, bool distinct) {
  auto e = Make(ExprKind::kAggregate);
  e->agg = func;
  e->left = std::move(arg);
  e->distinct = distinct;
  return e;
}

ExprPtr CountStar() { return Agg(AggFunc::kCount, nullptr); }

ExprPtr Star() { return Make(ExprKind::kStar); }

ExprPtr InList(ExprPtr operand, std::vector<Value> values, bool negated) {
  auto e = Make(ExprKind::kInList);
  e->left = std::move(operand);
  e->in_values = std::move(values);
  e->negated = negated;
  return e;
}

ExprPtr AndAll(const std::vector<ExprPtr>& conjuncts) {
  ExprPtr acc;
  for (const auto& c : conjuncts) {
    if (!c) continue;
    acc = acc ? And(acc, c) : c;
  }
  return acc;
}

// ---- Printing -------------------------------------------------------------

namespace {

// Higher binds tighter.
int Precedence(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kBinary:
      switch (e.bop) {
        case BinaryOp::kOr: return 1;
        case BinaryOp::kAnd: return 2;
        case BinaryOp::kEq:
        case BinaryOp::kNe:
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe:
          return 4;
        case BinaryOp::kAdd:
        case BinaryOp::kSub:
          return 5;
        case BinaryOp::kMul:
        case BinaryOp::kDiv:
          return 6;
      }
      return 0;
    case ExprKind::kUnary:
      return e.uop == UnaryOp::kNot ? 3 : 7;
    case ExprKind::kInList:
      return 4;
    default:
      return 8;  // atoms
  }
}

void Print(const Expr& e, int parent_prec, std::ostream& out) {
  int prec = Precedence(e);
  bool parens = prec < parent_prec;
  if (parens) out << "(";
  switch (e.kind) {
    case ExprKind::kColumnRef:
      if (!e.qualifier.empty()) out << e.qualifier << ".";
      out << e.column;
      break;
    case ExprKind::kLiteral:
      out << e.literal.ToSqlLiteral();
      break;
    case ExprKind::kBinary:
      Print(*e.left, prec, out);
      out << " " << BinaryOpSymbol(e.bop) << " ";
      // +1 on the right side keeps left-associative rendering unambiguous
      // for non-commutative operators.
      Print(*e.right, prec + 1, out);
      break;
    case ExprKind::kUnary:
      if (e.uop == UnaryOp::kNot) {
        out << "NOT ";
        Print(*e.left, prec, out);
      } else {
        out << "-";
        // Parenthesize when the operand would itself start with '-':
        // "--x" is a line comment to the lexer.
        bool starts_with_minus =
            (e.left->kind == ExprKind::kUnary &&
             e.left->uop == UnaryOp::kNeg) ||
            (e.left->kind == ExprKind::kLiteral &&
             e.left->literal.is_numeric() &&
             e.left->literal.AsDouble() < 0);
        if (starts_with_minus) {
          out << "(";
          Print(*e.left, 0, out);
          out << ")";
        } else {
          Print(*e.left, prec, out);
        }
      }
      break;
    case ExprKind::kAggregate:
      out << AggFuncName(e.agg) << "(";
      if (e.distinct) out << "DISTINCT ";
      if (e.left) {
        Print(*e.left, 0, out);
      } else {
        out << "*";
      }
      out << ")";
      break;
    case ExprKind::kStar:
      out << "*";
      break;
    case ExprKind::kInList: {
      Print(*e.left, prec + 1, out);
      out << (e.negated ? " NOT IN (" : " IN (");
      for (size_t i = 0; i < e.in_values.size(); ++i) {
        if (i > 0) out << ", ";
        out << e.in_values[i].ToSqlLiteral();
      }
      out << ")";
      break;
    }
  }
  if (parens) out << ")";
}

}  // namespace

std::string ToSql(const Expr& expr) {
  std::ostringstream out;
  Print(expr, 0, out);
  return out.str();
}

std::string ToSql(const ExprPtr& expr) {
  return expr ? ToSql(*expr) : std::string();
}

std::string ToSql(const SelectStmt& stmt) {
  std::ostringstream out;
  out << "SELECT ";
  if (stmt.distinct) out << "DISTINCT ";
  for (size_t i = 0; i < stmt.items.size(); ++i) {
    if (i > 0) out << ", ";
    const SelectItem& item = stmt.items[i];
    if (item.is_star) {
      out << "*";
    } else {
      out << ToSql(item.expr);
      if (!item.alias.empty()) out << " AS " << item.alias;
    }
  }
  out << " FROM ";
  for (size_t i = 0; i < stmt.from.size(); ++i) {
    if (i > 0) out << ", ";
    out << stmt.from[i].table;
    if (!stmt.from[i].alias.empty() &&
        !EqualsIgnoreCase(stmt.from[i].alias, stmt.from[i].table)) {
      out << " " << stmt.from[i].alias;
    }
  }
  if (stmt.where) out << " WHERE " << ToSql(stmt.where);
  if (!stmt.group_by.empty()) {
    out << " GROUP BY ";
    for (size_t i = 0; i < stmt.group_by.size(); ++i) {
      if (i > 0) out << ", ";
      out << ToSql(stmt.group_by[i]);
    }
  }
  if (stmt.having) out << " HAVING " << ToSql(stmt.having);
  if (!stmt.order_by.empty()) {
    out << " ORDER BY ";
    for (size_t i = 0; i < stmt.order_by.size(); ++i) {
      if (i > 0) out << ", ";
      out << ToSql(stmt.order_by[i].expr)
          << (stmt.order_by[i].ascending ? "" : " DESC");
    }
  }
  if (stmt.limit.has_value()) out << " LIMIT " << *stmt.limit;
  return out.str();
}

std::string ToSql(const Query& query) {
  std::ostringstream out;
  for (size_t i = 0; i < query.branches.size(); ++i) {
    if (i > 0) out << (query.union_all ? " UNION ALL " : " UNION ");
    if (query.branches.size() > 1) out << "(";
    out << ToSql(query.branches[i]);
    if (query.branches.size() > 1) out << ")";
  }
  return out.str();
}

// ---- Equality -------------------------------------------------------------

bool ExprEquals(const ExprPtr& a, const ExprPtr& b) {
  if (a == b) return true;
  if (!a || !b) return false;
  if (a->kind != b->kind) return false;
  switch (a->kind) {
    case ExprKind::kColumnRef:
      return a->qualifier == b->qualifier && a->column == b->column;
    case ExprKind::kLiteral:
      return a->literal.Compare(b->literal) == 0 &&
             a->literal.is_null() == b->literal.is_null();
    case ExprKind::kBinary:
      return a->bop == b->bop && ExprEquals(a->left, b->left) &&
             ExprEquals(a->right, b->right);
    case ExprKind::kUnary:
      return a->uop == b->uop && ExprEquals(a->left, b->left);
    case ExprKind::kAggregate:
      return a->agg == b->agg && a->distinct == b->distinct &&
             ExprEquals(a->left, b->left);
    case ExprKind::kStar:
      return true;
    case ExprKind::kInList: {
      if (a->negated != b->negated) return false;
      if (!ExprEquals(a->left, b->left)) return false;
      if (a->in_values.size() != b->in_values.size()) return false;
      for (size_t i = 0; i < a->in_values.size(); ++i) {
        if (a->in_values[i].Compare(b->in_values[i]) != 0) return false;
      }
      return true;
    }
  }
  return false;
}

bool StmtEquals(const SelectStmt& a, const SelectStmt& b) {
  if (a.distinct != b.distinct) return false;
  if (a.items.size() != b.items.size() || a.from.size() != b.from.size() ||
      a.group_by.size() != b.group_by.size() ||
      a.order_by.size() != b.order_by.size() || a.limit != b.limit) {
    return false;
  }
  for (size_t i = 0; i < a.items.size(); ++i) {
    if (a.items[i].is_star != b.items[i].is_star) return false;
    if (a.items[i].alias != b.items[i].alias) return false;
    if (!a.items[i].is_star && !ExprEquals(a.items[i].expr, b.items[i].expr)) {
      return false;
    }
  }
  for (size_t i = 0; i < a.from.size(); ++i) {
    if (!EqualsIgnoreCase(a.from[i].table, b.from[i].table) ||
        !EqualsIgnoreCase(a.from[i].alias, b.from[i].alias)) {
      return false;
    }
  }
  if (!ExprEquals(a.where, b.where)) return false;
  for (size_t i = 0; i < a.group_by.size(); ++i) {
    if (!ExprEquals(a.group_by[i], b.group_by[i])) return false;
  }
  if (!ExprEquals(a.having, b.having)) return false;
  for (size_t i = 0; i < a.order_by.size(); ++i) {
    if (a.order_by[i].ascending != b.order_by[i].ascending ||
        !ExprEquals(a.order_by[i].expr, b.order_by[i].expr)) {
      return false;
    }
  }
  return true;
}

bool QueryEquals(const Query& a, const Query& b) {
  if (a.branches.size() != b.branches.size()) return false;
  if (a.branches.size() > 1 && a.union_all != b.union_all) return false;
  for (size_t i = 0; i < a.branches.size(); ++i) {
    if (!StmtEquals(a.branches[i], b.branches[i])) return false;
  }
  return true;
}

// ---- Traversal ------------------------------------------------------------

void ForEachColumnRef(const ExprPtr& expr,
                      const std::function<void(const Expr&)>& fn) {
  if (!expr) return;
  if (expr->kind == ExprKind::kColumnRef) {
    fn(*expr);
    return;
  }
  ForEachColumnRef(expr->left, fn);
  ForEachColumnRef(expr->right, fn);
}

ExprPtr RewriteColumnRefs(const ExprPtr& expr,
                          const std::function<ExprPtr(const Expr&)>& fn) {
  if (!expr) return nullptr;
  if (expr->kind == ExprKind::kColumnRef) {
    ExprPtr replacement = fn(*expr);
    return replacement ? replacement : expr;
  }
  ExprPtr new_left = RewriteColumnRefs(expr->left, fn);
  ExprPtr new_right = RewriteColumnRefs(expr->right, fn);
  if (new_left == expr->left && new_right == expr->right) return expr;
  auto copy = std::make_shared<Expr>(*expr);
  copy->left = new_left;
  copy->right = new_right;
  return copy;
}

bool ContainsAggregate(const ExprPtr& expr) {
  if (!expr) return false;
  if (expr->kind == ExprKind::kAggregate) return true;
  return ContainsAggregate(expr->left) || ContainsAggregate(expr->right);
}

std::vector<ExprPtr> SplitConjuncts(const ExprPtr& expr) {
  std::vector<ExprPtr> out;
  if (!expr) return out;
  if (expr->kind == ExprKind::kBinary && expr->bop == BinaryOp::kAnd) {
    auto l = SplitConjuncts(expr->left);
    auto r = SplitConjuncts(expr->right);
    out.insert(out.end(), l.begin(), l.end());
    out.insert(out.end(), r.begin(), r.end());
    return out;
  }
  out.push_back(expr);
  return out;
}

std::vector<std::string> ReferencedQualifiers(const ExprPtr& expr) {
  std::set<std::string> seen;
  ForEachColumnRef(expr, [&](const Expr& ref) {
    if (!ref.qualifier.empty()) seen.insert(ref.qualifier);
  });
  return {seen.begin(), seen.end()};
}

}  // namespace qtrade::sql
