// Semantic analysis: binds a parsed SELECT block against a schema provider
// and normalizes it into the conjunctive select-project-join form all of the
// optimizer machinery works on (tables, classified conjuncts, projections,
// aggregates, grouping, ordering).
#ifndef QTRADE_SQL_ANALYZER_H_
#define QTRADE_SQL_ANALYZER_H_

#include <string>
#include <vector>

#include "sql/ast.h"
#include "types/row.h"
#include "types/schema.h"
#include "util/status.h"

namespace qtrade::sql {

/// Fully-resolved column reference.
struct BoundColumn {
  std::string alias;   // table alias (always set after binding)
  std::string column;  // column name
  TypeKind type = TypeKind::kInt64;

  std::string FullName() const { return alias + "." + column; }
  bool operator==(const BoundColumn& o) const {
    return alias == o.alias && column == o.column;
  }
};

enum class ConjunctKind {
  kLocal,     // references at most one table alias
  kEquiJoin,  // alias1.col = alias2.col
  kOtherJoin, // references >= 2 aliases, not a simple equi-join
};

/// One top-level AND conjunct of the WHERE clause, classified for the
/// optimizer. `expr` has all column refs qualified.
struct Conjunct {
  ExprPtr expr;
  std::vector<std::string> aliases;  // referenced aliases, sorted, distinct
  ConjunctKind kind = ConjunctKind::kLocal;
  // Populated when kind == kEquiJoin.
  BoundColumn left;
  BoundColumn right;
};

/// One output of the SELECT list after star expansion and alias resolution.
struct BoundOutput {
  ExprPtr expr;            // qualified; may contain aggregates
  std::string name;        // output column name (alias or derived)
  TypeKind type = TypeKind::kInt64;
  bool is_aggregate = false;  // contains at least one aggregate function
};

/// The normalized query. All expressions have qualified column refs.
struct BoundQuery {
  std::vector<TableRef> tables;        // FROM entries; aliases are distinct
  std::vector<Conjunct> conjuncts;     // WHERE split into conjuncts
  std::vector<BoundOutput> outputs;    // select list, stars expanded
  std::vector<BoundColumn> group_by;   // GROUP BY columns
  ExprPtr having;                      // qualified; null when absent
  std::vector<OrderItem> order_by;     // qualified exprs
  bool distinct = false;
  std::optional<int64_t> limit;
  bool has_aggregates = false;

  /// Output tuple schema (names/types of `outputs`).
  TupleSchema OutputSchema() const;

  /// Find the declared table for `alias`; nullptr if unknown.
  const TableRef* FindTable(const std::string& alias) const;

  /// Rebuilds a printable/parsable SelectStmt equivalent to this query.
  SelectStmt ToStmt() const;

  /// All local conjuncts that reference exactly `alias` (or no alias at all).
  std::vector<ExprPtr> LocalPredicates(const std::string& alias) const;

  /// All equi-join conjuncts.
  std::vector<const Conjunct*> JoinPredicates() const;
};

/// Binds `stmt` against `schemas`. Enforces: known tables, unambiguous
/// columns, aggregate/GROUP BY consistency, typed comparisons.
Result<BoundQuery> Analyze(const SelectStmt& stmt,
                           const SchemaProvider& schemas);

/// Convenience: parse + analyze a single-SELECT query string.
Result<BoundQuery> AnalyzeSql(const std::string& text,
                              const SchemaProvider& schemas);

/// Infers the result type of a bound scalar expression.
Result<TypeKind> InferType(const ExprPtr& expr, const BoundQuery& query,
                           const SchemaProvider& schemas);

}  // namespace qtrade::sql

#endif  // QTRADE_SQL_ANALYZER_H_
