#include "obs/trace.h"

#include <cstdio>
#include <map>

namespace qtrade::obs {

namespace {

/// JSON string escaping for span names, node names and attr values.
std::string Escaped(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string AttrsJson(const SpanRecord& rec) {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : rec.attrs) {
    if (!first) out += ",";
    first = false;
    out += "\"" + Escaped(key) + "\":\"" + Escaped(value) + "\"";
  }
  out += "}";
  return out;
}

class FileCloser {
 public:
  explicit FileCloser(std::FILE* f) : f_(f) {}
  ~FileCloser() {
    if (f_ != nullptr) std::fclose(f_);
  }

 private:
  std::FILE* f_;
};

}  // namespace

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    End();
    tracer_ = other.tracer_;
    rec_ = std::move(other.rec_);
    start_ = other.start_;
    other.tracer_ = nullptr;
  }
  return *this;
}

Span& Span::Node(const std::string& node) {
  if (rec_) rec_->node = node;
  return *this;
}

Span& Span::Round(int32_t round) {
  if (rec_) rec_->round = round;
  return *this;
}

Span& Span::Negotiation(uint32_t negotiation) {
  if (rec_) rec_->negotiation = negotiation;
  return *this;
}

Span& Span::Attr(const char* key, const std::string& value) {
  if (rec_) rec_->attrs.emplace_back(key, value);
  return *this;
}

Span& Span::Attr(const char* key, const char* value) {
  if (rec_) rec_->attrs.emplace_back(key, value);
  return *this;
}

Span& Span::Attr(const char* key, int64_t value) {
  if (rec_) rec_->attrs.emplace_back(key, std::to_string(value));
  return *this;
}

Span& Span::Attr(const char* key, double value) {
  if (rec_) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    rec_->attrs.emplace_back(key, buf);
  }
  return *this;
}

void Span::End() {
  if (rec_ == nullptr || tracer_ == nullptr) return;
  rec_->dur_us =
      rec_->instant
          ? 0
          : std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - start_)
                .count();
  tracer_->Record(std::move(rec_));
  tracer_ = nullptr;
}

void Tracer::SetIdentity(const std::string& node) {
  node_ = node;
  // FNV-1a over the node name, folded to 24 bits in the id's upper half:
  // two processes seeded with different names can mint ~2^38 spans each
  // before their id ranges could meet, so merged traces never alias.
  uint64_t hash = 1469598103934665603ull;
  for (char c : node) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 1099511628211ull;
  }
  next_id_.store(((hash & 0xffffffull) << 38) | 1,
                 std::memory_order_relaxed);
}

Span Tracer::StartSpan(std::string name, SpanRef parent) {
  Span span;
  if (!enabled()) return span;
  span.tracer_ = this;
  span.start_ = std::chrono::steady_clock::now();
  span.rec_ = std::make_unique<SpanRecord>();
  span.rec_->id = next_id_.fetch_add(1, std::memory_order_relaxed);
  span.rec_->parent = parent.id;
  // A root span is its own trace; children inherit the root's id as
  // their trace id, across processes when the parent ref came off the
  // wire.
  span.rec_->trace_id = parent.trace_id != 0 ? parent.trace_id
                                             : span.rec_->id;
  span.rec_->round = parent.round;
  span.rec_->negotiation = parent.negotiation;
  span.rec_->name = std::move(name);
  span.rec_->start_us = std::chrono::duration_cast<std::chrono::microseconds>(
                            span.start_ - epoch_)
                            .count();
  return span;
}

Span Tracer::StartInstant(std::string name, SpanRef parent) {
  Span span = StartSpan(std::move(name), parent);
  if (span.rec_) span.rec_->instant = true;
  return span;
}

int64_t Tracer::now_us() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void Tracer::Record(std::unique_ptr<SpanRecord> rec) {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back(std::move(*rec));
}

std::vector<SpanRecord> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

size_t Tracer::span_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
}

Status WriteChromeTrace(const Tracer& tracer, const std::string& path) {
  const std::vector<SpanRecord> spans = tracer.Snapshot();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open trace file: " + path);
  }
  FileCloser closer(f);

  // Stable pid per node name; unattributed spans go to pid 0 ("buyer
  // process" metadata still names it).
  std::map<std::string, int> pids;
  for (const auto& rec : spans) {
    if (pids.count(rec.node) == 0) {
      const int next = static_cast<int>(pids.size());
      pids.emplace(rec.node, next);
    }
  }

  std::fputs("{\"traceEvents\":[\n", f);
  bool first = true;
  for (const auto& [node, pid] : pids) {
    std::fprintf(f,
                 "%s{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,"
                 "\"tid\":0,\"args\":{\"name\":\"%s\"}}",
                 first ? "" : ",\n", pid,
                 Escaped(node.empty() ? "(unattributed)" : node).c_str());
    first = false;
  }
  for (const auto& rec : spans) {
    const int pid = pids[rec.node];
    // Negotiation-tagged spans get one lane per negotiation (concurrent
    // negotiations stay visually separable); untagged spans keep the
    // historical one-lane-per-round layout.
    const long long tid = rec.negotiation > 0
                              ? static_cast<long long>(rec.negotiation)
                              : (rec.round >= 0 ? rec.round : 0);
    std::string args = "{";
    args += "\"id\":\"" + std::to_string(rec.id) + "\"";
    args += ",\"parent\":\"" + std::to_string(rec.parent) + "\"";
    args += ",\"trace_id\":\"" + std::to_string(rec.trace_id) + "\"";
    for (const auto& [key, value] : rec.attrs) {
      args += ",\"" + Escaped(key) + "\":\"" + Escaped(value) + "\"";
    }
    args += "}";
    std::fprintf(
        f,
        "%s{\"name\":\"%s\",\"cat\":\"qtrade\",\"ph\":\"%s\",\"ts\":%lld,"
        "%s\"pid\":%d,\"tid\":%lld,\"args\":%s}",
        first ? "" : ",\n", Escaped(rec.name).c_str(),
        rec.instant ? "i" : "X", static_cast<long long>(rec.start_us),
        rec.instant
            ? "\"s\":\"t\","
            : ("\"dur\":" + std::to_string(rec.dur_us) + ",").c_str(),
        pid, tid, args.c_str());
    first = false;
  }
  // Node identity rides as a top-level metadata object (Chrome/Perfetto
  // ignore unknown keys) so tools/trace_merge.py knows whose timeline
  // this file is without guessing from span attribution.
  if (tracer.node().empty()) {
    std::fputs("\n]}\n", f);
  } else {
    std::fprintf(f, "\n],\"metadata\":{\"node\":\"%s\"}}\n",
                 Escaped(tracer.node()).c_str());
  }
  return Status::OK();
}

Status WriteJsonl(const Tracer& tracer, const std::string& path) {
  const std::vector<SpanRecord> spans = tracer.Snapshot();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open trace file: " + path);
  }
  FileCloser closer(f);
  if (!tracer.node().empty()) {
    // Self-identifying first line for mergers/summarizers (they skip or
    // consume it; it is not a span).
    std::fprintf(f, "{\"trace_meta\":1,\"node\":\"%s\"}\n",
                 Escaped(tracer.node()).c_str());
  }
  for (const auto& rec : spans) {
    std::fprintf(f,
                 "{\"ts_us\":%lld,\"dur_us\":%lld,\"name\":\"%s\","
                 "\"node\":\"%s\",\"round\":%d,\"negotiation\":%u,"
                 "\"id\":%llu,"
                 "\"parent\":%llu,\"trace_id\":%llu,\"instant\":%s,"
                 "\"attrs\":%s}\n",
                 static_cast<long long>(rec.start_us),
                 static_cast<long long>(rec.dur_us),
                 Escaped(rec.name).c_str(), Escaped(rec.node).c_str(),
                 rec.round, rec.negotiation,
                 static_cast<unsigned long long>(rec.id),
                 static_cast<unsigned long long>(rec.parent),
                 static_cast<unsigned long long>(rec.trace_id),
                 rec.instant ? "true" : "false", AttrsJson(rec).c_str());
  }
  return Status::OK();
}

}  // namespace qtrade::obs
