// Negotiation tracing: nested spans over the trading pipeline (buyer
// round loop, seller offer generation, transport sends), exportable as
// Chrome `chrome://tracing` JSON or flat JSONL.
//
// Span taxonomy (see DESIGN.md "Observability"):
//   negotiation                 one BuyerEngine::Optimize call (root)
//     round[i]                  one Fig. 2 outer-loop iteration
//       rfb_broadcast           one RFB fan-out + reply collection
//         offer_gen             one seller answering (node = seller)
//           cache_lookup        offer-cache probe (attr hit=0/1)
//           rewrite             §3.4 partition rewrite
//           dp_enumerate        seller-side DP/IDP enumeration
//         partition_cover       §3.5 subcontract greedy cover
//       rank_offers             nested negotiation (auction/bargain)
//       plan_assemble           buyer-side coverage DP
//     award                     winner/loser notification fan-out
//   send[kind] / fault[kind]    transport instants (message size, faults)
//
// Concurrency: spans are started and annotated lock-free (each live span
// owns its record on the heap; ids come from one atomic); only finishing
// a span takes the tracer mutex for a single vector push. Seller spans
// from parallel transport worker threads therefore never contend during
// generation, which is the hot path.
//
// Overhead discipline: every instrumentation site guards on
// Tracer::Active(tracer) — a null check plus one relaxed atomic load —
// so a detached (null) or disabled tracer costs nothing measurable on
// the negotiation hot path (bench_obs_overhead pins this down).
#ifndef QTRADE_OBS_TRACE_H_
#define QTRADE_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace qtrade::obs {

/// One finished span (or instant event) as recorded by the tracer.
struct SpanRecord {
  uint64_t id = 0;
  uint64_t parent = 0;  // 0 = root
  /// Id of the trace this span belongs to — the id of its root span
  /// (a root span is its own trace). Inherited from the parent ref at
  /// StartSpan, so a whole negotiation shares one trace id across every
  /// process it touches (the v3 frame header carries it).
  uint64_t trace_id = 0;
  std::string name;
  std::string node;     // federation node (Chrome-trace pid dimension)
  int32_t round = -1;   // negotiation round
  /// Negotiation id (frame-header channel) the span belongs to; 0 =
  /// untagged. When set it becomes the Chrome-trace tid dimension, so
  /// concurrent negotiations render as separate lanes per node.
  uint32_t negotiation = 0;
  bool instant = false; // point event (transport send, fault injection)
  int64_t start_us = 0; // relative to the tracer's epoch
  int64_t dur_us = 0;
  std::vector<std::pair<std::string, std::string>> attrs;
};

/// Span identity passable across threads and engine boundaries (the Rfb
/// envelope carries one so seller spans parent under the buyer's
/// rfb_broadcast span).
struct SpanRef {
  uint64_t id = 0;
  int32_t round = -1;
  uint32_t negotiation = 0;
  /// Trace the referenced span belongs to (see SpanRecord::trace_id).
  /// Appended last so positional initializers predating it still mean
  /// what they meant (trace_id 0 = "start a fresh trace").
  uint64_t trace_id = 0;
};

class Tracer;

/// RAII handle for an in-flight span. Default-constructed (or started
/// against a disabled tracer) it is inert: every method is a null check.
/// Move-only; records into the tracer on End()/destruction.
class Span {
 public:
  Span() = default;
  Span(Span&& other) noexcept { *this = std::move(other); }
  Span& operator=(Span&& other) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { End(); }

  bool active() const { return rec_ != nullptr; }
  uint64_t id() const { return rec_ ? rec_->id : 0; }
  SpanRef ref() const {
    return rec_ ? SpanRef{rec_->id, rec_->round, rec_->negotiation,
                          rec_->trace_id}
                : SpanRef{};
  }

  Span& Node(const std::string& node);
  Span& Round(int32_t round);
  Span& Negotiation(uint32_t negotiation);
  Span& Attr(const char* key, const std::string& value);
  Span& Attr(const char* key, const char* value);
  Span& Attr(const char* key, int64_t value);
  Span& Attr(const char* key, double value);

  /// Finishes the span and hands its record to the tracer. Idempotent.
  void End();

 private:
  friend class Tracer;
  Tracer* tracer_ = nullptr;
  std::unique_ptr<SpanRecord> rec_;
  std::chrono::steady_clock::time_point start_{};
};

class Tracer {
 public:
  Tracer() = default;

  /// Gives this tracer a federation identity: `node` is stamped into the
  /// exported trace files (so tools/trace_merge.py knows whose timeline
  /// each file is), and span ids are re-seeded with a hash of the name
  /// in their high bits so ids minted by different processes never
  /// collide when traces are stitched. Call before any span starts.
  void SetIdentity(const std::string& node);
  const std::string& node() const { return node_; }

  /// Sampling switch: a disabled tracer hands out inert spans (used to
  /// trace every Nth negotiation; see QtOptions trace_sample_period).
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// The one-line guard every instrumentation site uses; safe on null.
  static bool Active(const Tracer* tracer) {
    return tracer != nullptr && tracer->enabled();
  }

  /// Starts a nested span (`parent` 0 = root). The span inherits the
  /// parent ref's round and negotiation; override with Span::Round /
  /// Span::Negotiation.
  Span StartSpan(std::string name, SpanRef parent = {});

  /// Starts a point event (zero duration); finish it like a span after
  /// attaching attributes.
  Span StartInstant(std::string name, SpanRef parent = {});

  /// Microseconds since this tracer's epoch (the trace time base).
  int64_t now_us() const;

  /// Copy of everything recorded so far (mid-run snapshots are fine).
  std::vector<SpanRecord> Snapshot() const;
  size_t span_count() const;
  void Clear();

 private:
  friend class Span;
  void Record(std::unique_ptr<SpanRecord> rec);

  std::atomic<bool> enabled_{true};
  std::atomic<uint64_t> next_id_{1};
  std::string node_;
  const std::chrono::steady_clock::time_point epoch_ =
      std::chrono::steady_clock::now();
  mutable std::mutex mu_;
  std::vector<SpanRecord> spans_;
};

/// Writes the trace in Chrome trace-event format ({"traceEvents":[...]}),
/// loadable in chrome://tracing / Perfetto: complete ("X") events with
/// pid = federation node, tid = the span's negotiation id when tagged
/// (concurrent negotiations render as separate lanes) falling back to
/// the negotiation round, args = span attrs, plus process_name metadata
/// rows naming the nodes.
Status WriteChromeTrace(const Tracer& tracer, const std::string& path);

/// Writes one JSON object per line (ts_us, dur_us, name, node, round,
/// negotiation, id, parent, attrs) — grep/jq-friendly flat form of the
/// same trace.
Status WriteJsonl(const Tracer& tracer, const std::string& path);

/// Observability knobs carried by QtOptions. All off by default: the
/// facade only constructs a tracer/registry when a path is set (or one
/// is attached programmatically), so the default negotiation path stays
/// instrumentation-free.
struct ObsOptions {
  /// Chrome trace-event JSON output path ("" = off).
  std::string trace_path;
  /// Flat JSONL trace output path ("" = off).
  std::string trace_jsonl_path;
  /// MetricsRegistry JSON dump path ("" = off).
  std::string metrics_json_path;
  /// Trace every Nth Optimize() call (<=1 = every negotiation). Metrics
  /// are never sampled — counters stay exact.
  int trace_sample_period = 1;

  bool any() const {
    return !trace_path.empty() || !trace_jsonl_path.empty() ||
           !metrics_json_path.empty();
  }
};

}  // namespace qtrade::obs

#endif  // QTRADE_OBS_TRACE_H_
