// Named counters, gauges and histograms for the trading pipeline: the
// per-node, per-phase breakdown of what TradeMetrics only reports as
// run-level sums (per-seller offer-generation latency, cache hit
// ratios, per-node transport bytes/messages, dropped/late offers).
//
// Usage pattern: look an instrument up once (registry mutex, get-or-
// create) and keep the pointer — instruments are never deallocated while
// the registry lives, and all updates are relaxed atomics, so the hot
// path never locks. The registry is snapshotable mid-run (ToJson reads
// the atomics without stopping writers).
#ifndef QTRADE_OBS_METRICS_H_
#define QTRADE_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace qtrade::obs {

class Counter {
 public:
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

class Gauge {
 public:
  void Set(double value) {
    bits_.store(Encode(value), std::memory_order_relaxed);
  }
  double value() const {
    return Decode(bits_.load(std::memory_order_relaxed));
  }

 private:
  static uint64_t Encode(double v) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    return bits;
  }
  static double Decode(uint64_t bits) {
    double v;
    __builtin_memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::atomic<uint64_t> bits_{0};
};

/// Log-scaled latency histogram: bucket i counts observations with
/// value <= 2^i (bucket 0 covers <= 1), the last bucket is +Inf. With
/// 26 finite buckets the microsecond scale spans 1us .. ~67s.
class Histogram {
 public:
  static constexpr int kBuckets = 27;  // 26 finite + overflow

  void Observe(int64_t value);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  int64_t bucket(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Upper bound of finite bucket i (2^i); the last bucket has no bound.
  static int64_t BucketBound(int i) { return int64_t{1} << i; }

  /// Bucket-interpolated percentile estimate, q in [0,1]: linear
  /// interpolation of the target rank inside the bucket it falls in
  /// (the log2 analogue of bench_util.h's Percentile). Resolution is
  /// one bucket, i.e. a factor of two; the overflow bucket reports its
  /// lower bound. Returns 0 for an empty histogram.
  double ApproxPercentile(double q) const;

 private:
  std::atomic<int64_t> buckets_[kBuckets] = {};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
};

class MetricsRegistry {
 public:
  /// Get-or-create by name; returned pointers stay valid for the
  /// registry's lifetime. A name denotes one instrument kind only.
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);

  /// Mid-run-safe JSON snapshot:
  ///   {"counters":{...},"gauges":{...},
  ///    "histograms":{name:{"count":..,"sum":..,
  ///                        "p50":..,"p90":..,"p99":..,
  ///                        "buckets":[{"le":2,"count":..},...]}}}
  /// Histogram percentiles are bucket-interpolated (ApproxPercentile).
  std::string ToJson() const;

  /// Writes ToJson() to `path` atomically: the snapshot lands in
  /// `path`.tmp first and is renamed into place, so a reader polling
  /// the file mid-run never sees a torn document.
  Status WriteJson(const std::string& path) const;

  /// Flattens every instrument into "metric.<name>" key/value pairs for
  /// the kStatsRequest admin envelope: counters and gauges one entry
  /// each, histograms as .count/.sum/.p50/.p90/.p99 sub-entries.
  void CollectEntries(
      std::vector<std::pair<std::string, std::string>>* out) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace qtrade::obs

#endif  // QTRADE_OBS_METRICS_H_
