#include "obs/metrics.h"

#include <bit>
#include <cstdio>

namespace qtrade::obs {

void Histogram::Observe(int64_t value) {
  if (value < 0) value = 0;
  // Value v lands in the first bucket whose bound 2^i satisfies v <= 2^i:
  // i = bit_width(v - 1) for v >= 2, bucket 0 for v in {0, 1}.
  int idx = 0;
  if (value > 1) {
    idx = std::bit_width(static_cast<uint64_t>(value - 1));
    if (idx >= kBuckets) idx = kBuckets - 1;
  }
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":" + std::to_string(c->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", g->value());
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":" + buf;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":{\"count\":" + std::to_string(h->count()) +
           ",\"sum\":" + std::to_string(h->sum()) + ",\"buckets\":[";
    bool first_bucket = true;
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      const int64_t n = h->bucket(i);
      if (n == 0) continue;  // sparse: empty buckets are implied
      if (!first_bucket) out += ",";
      first_bucket = false;
      if (i < Histogram::kBuckets - 1) {
        out += "{\"le\":" + std::to_string(Histogram::BucketBound(i)) +
               ",\"count\":" + std::to_string(n) + "}";
      } else {
        out += "{\"le\":\"inf\",\"count\":" + std::to_string(n) + "}";
      }
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

Status MetricsRegistry::WriteJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open metrics file: " + path);
  }
  std::fputs(ToJson().c_str(), f);
  std::fputs("\n", f);
  std::fclose(f);
  return Status::OK();
}

}  // namespace qtrade::obs
