#include "obs/metrics.h"

#include <bit>
#include <cstdio>

namespace qtrade::obs {

namespace {

void AppendDouble(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  *out += buf;
}

std::string DoubleString(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

void Histogram::Observe(int64_t value) {
  if (value < 0) value = 0;
  // Value v lands in the first bucket whose bound 2^i satisfies v <= 2^i:
  // i = bit_width(v - 1) for v >= 2, bucket 0 for v in {0, 1}.
  int idx = 0;
  if (value > 1) {
    idx = std::bit_width(static_cast<uint64_t>(value - 1));
    if (idx >= kBuckets) idx = kBuckets - 1;
  }
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

double Histogram::ApproxPercentile(double q) const {
  // Snapshot the buckets once: writers are concurrent, and a rank
  // computed from one total must be resolved against the same counts.
  int64_t counts[kBuckets];
  int64_t total = 0;
  for (int i = 0; i < kBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total <= 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // Same closest-ranks convention as bench_util.h Percentile: the target
  // is rank q*(n-1) (0-based), interpolated linearly — here across the
  // bucket's [lower, upper] value range rather than between samples.
  const double rank = q * static_cast<double>(total - 1);
  int64_t cum = 0;
  for (int i = 0; i < kBuckets; ++i) {
    if (counts[i] == 0) continue;
    const double first = static_cast<double>(cum);         // first rank here
    cum += counts[i];
    if (rank >= static_cast<double>(cum)) continue;
    const double lo =
        i == 0 ? 0.0 : static_cast<double>(BucketBound(i - 1));
    if (i == kBuckets - 1) return lo;  // overflow bucket: unbounded above
    const double hi = static_cast<double>(BucketBound(i));
    const double frac = (rank - first) / static_cast<double>(counts[i]);
    return lo + (hi - lo) * frac;
  }
  return 0;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":" + std::to_string(c->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", g->value());
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":" + buf;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":{\"count\":" + std::to_string(h->count()) +
           ",\"sum\":" + std::to_string(h->sum());
    out += ",\"p50\":";
    AppendDouble(&out, h->ApproxPercentile(0.50));
    out += ",\"p90\":";
    AppendDouble(&out, h->ApproxPercentile(0.90));
    out += ",\"p99\":";
    AppendDouble(&out, h->ApproxPercentile(0.99));
    out += ",\"buckets\":[";
    bool first_bucket = true;
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      const int64_t n = h->bucket(i);
      if (n == 0) continue;  // sparse: empty buckets are implied
      if (!first_bucket) out += ",";
      first_bucket = false;
      if (i < Histogram::kBuckets - 1) {
        out += "{\"le\":" + std::to_string(Histogram::BucketBound(i)) +
               ",\"count\":" + std::to_string(n) + "}";
      } else {
        out += "{\"le\":\"inf\",\"count\":" + std::to_string(n) + "}";
      }
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

Status MetricsRegistry::WriteJson(const std::string& path) const {
  // Write-to-temp + rename: a reader polling `path` mid-run (qtrade_stat,
  // dashboards tailing the metrics file) always sees a complete document.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open metrics file: " + tmp);
  }
  const std::string json = ToJson();
  const bool wrote = std::fputs(json.c_str(), f) >= 0 &&
                     std::fputs("\n", f) >= 0;
  if (std::fclose(f) != 0 || !wrote) {
    std::remove(tmp.c_str());
    return Status::Internal("cannot write metrics file: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("cannot rename metrics file into place: " + path);
  }
  return Status::OK();
}

void MetricsRegistry::CollectEntries(
    std::vector<std::pair<std::string, std::string>>* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) {
    out->emplace_back("metric." + name, std::to_string(c->value()));
  }
  for (const auto& [name, g] : gauges_) {
    out->emplace_back("metric." + name, DoubleString(g->value()));
  }
  for (const auto& [name, h] : histograms_) {
    const std::string base = "metric." + name;
    out->emplace_back(base + ".count", std::to_string(h->count()));
    out->emplace_back(base + ".sum", std::to_string(h->sum()));
    out->emplace_back(base + ".p50", DoubleString(h->ApproxPercentile(0.50)));
    out->emplace_back(base + ".p90", DoubleString(h->ApproxPercentile(0.90)));
    out->emplace_back(base + ".p99", DoubleString(h->ApproxPercentile(0.99)));
  }
}

}  // namespace qtrade::obs
