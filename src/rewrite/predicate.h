// Predicate reasoning toolkit: per-column feasible-set restrictions,
// conservative implication and unsatisfiability tests, and conjunct
// simplification. This is the machinery behind the paper's §3.4 seller
// rewriting ("restrict base-relation extents to local partitions and
// simplify the WHERE part") and the §3.5/§3.6 view-matching tests.
//
// All tests are conservative: "false" answers mean "could not prove",
// never "proved false" — callers only act on "true".
#ifndef QTRADE_REWRITE_PREDICATE_H_
#define QTRADE_REWRITE_PREDICATE_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "sql/ast.h"
#include "types/value.h"
#include "util/status.h"

namespace qtrade {

/// The feasible set of one column under a conjunction of atomic
/// predicates: an optional explicit value set (from = / IN), an interval
/// (over Value's total order, so strings work too), and excluded points
/// (from <> / NOT IN).
class ColumnRestriction {
 public:
  ColumnRestriction() = default;

  void IntersectEq(const Value& v);
  void IntersectIn(const std::vector<Value>& values);
  void IntersectComparison(sql::BinaryOp op, const Value& v);  // <,<=,>,>=
  void ExcludeValue(const Value& v);  // <> v / NOT IN
  void ExcludeValues(const std::vector<Value>& values);

  /// True when the feasible set is provably empty.
  bool IsEmpty() const;

  /// True when every value satisfying *this also satisfies `other`
  /// (conservative: may return false when unsure).
  bool ImpliedBy(const ColumnRestriction& premise) const {
    return premise.Implies(*this);
  }
  bool Implies(const ColumnRestriction& conclusion) const;

  /// True when no constraints have been added.
  bool IsUnconstrained() const;

  std::string ToString() const;

 private:
  bool ValueAllowed(const Value& v) const;

  // Explicit candidate set (nullopt = all values).
  std::optional<std::vector<Value>> values_;
  // Interval bounds (null Value = unbounded on that side).
  Value lower_;
  bool lower_inclusive_ = true;
  Value upper_;
  bool upper_inclusive_ = true;
  // Excluded points.
  std::vector<Value> excluded_;
};

/// Per-column restrictions extracted from a conjunction. Columns are keyed
/// by "qualifier.column". Conjuncts that are not atomic single-column
/// constraints are collected in `opaque` and ignored by the reasoning.
struct RestrictionSet {
  std::map<std::string, ColumnRestriction> columns;
  std::vector<sql::ExprPtr> opaque;

  /// True when some column's feasible set is provably empty.
  bool Unsatisfiable() const;
};

/// Builds restrictions from a list of conjuncts. Recognized atoms:
/// col op literal (either side), col [NOT] IN (...), NOT(atom),
/// and literal TRUE/FALSE.
RestrictionSet BuildRestrictions(const std::vector<sql::ExprPtr>& conjuncts);

/// True when `conjuncts` are provably unsatisfiable together.
bool ProvablyUnsatisfiable(const std::vector<sql::ExprPtr>& conjuncts);

/// True when the conjunction of `premises` provably implies `conclusion`.
/// Handles atomic single-column conclusions plus exact structural matches.
bool ProvablyImplies(const std::vector<sql::ExprPtr>& premises,
                     const sql::ExprPtr& conclusion);

/// Simplifies a conjunct list: drops duplicates and conjuncts implied by
/// the rest, folds literal TRUE, and returns nullopt when the conjunction
/// is provably unsatisfiable (i.e., FALSE).
std::optional<std::vector<sql::ExprPtr>> SimplifyConjuncts(
    std::vector<sql::ExprPtr> conjuncts);

}  // namespace qtrade

#endif  // QTRADE_REWRITE_PREDICATE_H_
