#include "rewrite/predicate.h"

#include <algorithm>
#include <sstream>

namespace qtrade {

namespace {

using sql::BinaryOp;
using sql::Expr;
using sql::ExprKind;
using sql::ExprPtr;

bool ValueIn(const Value& v, const std::vector<Value>& values) {
  for (const auto& x : values) {
    if (x.Compare(v) == 0) return true;
  }
  return false;
}

}  // namespace

void ColumnRestriction::IntersectEq(const Value& v) {
  IntersectIn(std::vector<Value>{v});
}

void ColumnRestriction::IntersectIn(const std::vector<Value>& values) {
  if (!values_.has_value()) {
    values_ = values;
    return;
  }
  std::vector<Value> kept;
  for (const auto& v : *values_) {
    if (ValueIn(v, values)) kept.push_back(v);
  }
  values_ = std::move(kept);
}

void ColumnRestriction::IntersectComparison(sql::BinaryOp op, const Value& v) {
  switch (op) {
    case BinaryOp::kLt:
    case BinaryOp::kLe: {
      bool inclusive = (op == BinaryOp::kLe);
      if (upper_.is_null() || v.Compare(upper_) < 0 ||
          (v.Compare(upper_) == 0 && !inclusive && upper_inclusive_)) {
        upper_ = v;
        upper_inclusive_ = inclusive;
      }
      break;
    }
    case BinaryOp::kGt:
    case BinaryOp::kGe: {
      bool inclusive = (op == BinaryOp::kGe);
      if (lower_.is_null() || v.Compare(lower_) > 0 ||
          (v.Compare(lower_) == 0 && !inclusive && lower_inclusive_)) {
        lower_ = v;
        lower_inclusive_ = inclusive;
      }
      break;
    }
    case BinaryOp::kEq:
      IntersectEq(v);
      break;
    case BinaryOp::kNe:
      ExcludeValue(v);
      break;
    default:
      break;
  }
}

void ColumnRestriction::ExcludeValue(const Value& v) {
  if (!ValueIn(v, excluded_)) excluded_.push_back(v);
}

void ColumnRestriction::ExcludeValues(const std::vector<Value>& values) {
  for (const auto& v : values) ExcludeValue(v);
}

bool ColumnRestriction::ValueAllowed(const Value& v) const {
  if (ValueIn(v, excluded_)) return false;
  if (!lower_.is_null()) {
    int cmp = v.Compare(lower_);
    if (cmp < 0 || (cmp == 0 && !lower_inclusive_)) return false;
  }
  if (!upper_.is_null()) {
    int cmp = v.Compare(upper_);
    if (cmp > 0 || (cmp == 0 && !upper_inclusive_)) return false;
  }
  return true;
}

bool ColumnRestriction::IsEmpty() const {
  if (values_.has_value()) {
    for (const auto& v : *values_) {
      if (ValueAllowed(v)) return false;
    }
    return true;
  }
  if (!lower_.is_null() && !upper_.is_null()) {
    int cmp = lower_.Compare(upper_);
    if (cmp > 0) return true;
    if (cmp == 0) {
      if (!(lower_inclusive_ && upper_inclusive_)) return true;
      // Single point; excluded?
      return ValueIn(lower_, excluded_);
    }
  }
  return false;
}

bool ColumnRestriction::IsUnconstrained() const {
  return !values_.has_value() && lower_.is_null() && upper_.is_null() &&
         excluded_.empty();
}

bool ColumnRestriction::Implies(const ColumnRestriction& conclusion) const {
  // Every value allowed by *this must be allowed by `conclusion`.
  if (conclusion.IsUnconstrained()) return true;
  if (IsEmpty()) return true;  // vacuous
  if (values_.has_value()) {
    // Finite candidate set: check exhaustively.
    for (const auto& v : *values_) {
      if (!ValueAllowed(v)) continue;
      if (conclusion.values_.has_value() &&
          !ValueIn(v, *conclusion.values_)) {
        return false;
      }
      if (!conclusion.ValueAllowed(v)) return false;
    }
    return true;
  }
  // Infinite (interval) premise: conclusion must not have a finite set.
  if (conclusion.values_.has_value()) return false;
  // Conclusion exclusions must be outside our interval.
  for (const auto& v : conclusion.excluded_) {
    if (ValueAllowed(v)) return false;
  }
  // Interval containment: [lower_, upper_] within conclusion bounds.
  if (!conclusion.lower_.is_null()) {
    if (lower_.is_null()) return false;
    int cmp = lower_.Compare(conclusion.lower_);
    if (cmp < 0) return false;
    if (cmp == 0 && lower_inclusive_ && !conclusion.lower_inclusive_) {
      return false;
    }
  }
  if (!conclusion.upper_.is_null()) {
    if (upper_.is_null()) return false;
    int cmp = upper_.Compare(conclusion.upper_);
    if (cmp > 0) return false;
    if (cmp == 0 && upper_inclusive_ && !conclusion.upper_inclusive_) {
      return false;
    }
  }
  return true;
}

std::string ColumnRestriction::ToString() const {
  std::ostringstream out;
  if (values_.has_value()) {
    out << "in{";
    for (size_t i = 0; i < values_->size(); ++i) {
      if (i > 0) out << ",";
      out << (*values_)[i].ToString();
    }
    out << "}";
  }
  if (!lower_.is_null()) {
    out << (lower_inclusive_ ? " >=" : " >") << lower_.ToString();
  }
  if (!upper_.is_null()) {
    out << (upper_inclusive_ ? " <=" : " <") << upper_.ToString();
  }
  if (!excluded_.empty()) {
    out << " not{";
    for (size_t i = 0; i < excluded_.size(); ++i) {
      if (i > 0) out << ",";
      out << excluded_[i].ToString();
    }
    out << "}";
  }
  if (IsUnconstrained()) out << "any";
  return out.str();
}

bool RestrictionSet::Unsatisfiable() const {
  for (const auto& [col, restriction] : columns) {
    if (restriction.IsEmpty()) return true;
  }
  return false;
}

namespace {

std::string ColumnKey(const Expr& ref) {
  return ref.qualifier + "." + ref.column;
}

/// If `e` is a disjunction of positive equality/IN constraints on a single
/// column, returns that column's key and collects the allowed values.
bool MatchSameColumnDisjunction(const ExprPtr& e, std::string* key,
                                std::vector<Value>* values) {
  const Expr& expr = *e;
  if (expr.kind == ExprKind::kBinary && expr.bop == BinaryOp::kOr) {
    return MatchSameColumnDisjunction(expr.left, key, values) &&
           MatchSameColumnDisjunction(expr.right, key, values);
  }
  if (expr.kind == ExprKind::kInList && !expr.negated &&
      expr.left->kind == ExprKind::kColumnRef) {
    std::string this_key = ColumnKey(*expr.left);
    if (!key->empty() && *key != this_key) return false;
    *key = this_key;
    values->insert(values->end(), expr.in_values.begin(),
                   expr.in_values.end());
    return true;
  }
  if (expr.kind == ExprKind::kBinary && expr.bop == BinaryOp::kEq) {
    const Expr* col = nullptr;
    const Expr* lit = nullptr;
    if (expr.left->kind == ExprKind::kColumnRef &&
        expr.right->kind == ExprKind::kLiteral) {
      col = expr.left.get();
      lit = expr.right.get();
    } else if (expr.right->kind == ExprKind::kColumnRef &&
               expr.left->kind == ExprKind::kLiteral) {
      col = expr.right.get();
      lit = expr.left.get();
    } else {
      return false;
    }
    if (lit->literal.is_null()) return false;
    std::string this_key = ColumnKey(*col);
    if (!key->empty() && *key != this_key) return false;
    *key = this_key;
    values->push_back(lit->literal);
    return true;
  }
  return false;
}

/// Tries to fold `e` into `set` as an atomic single-column constraint.
/// `negate` handles NOT(...) contexts for the shapes we understand.
/// Returns true when absorbed.
bool AbsorbAtom(const ExprPtr& e, bool negate, RestrictionSet* set) {
  if (!e) return true;
  const Expr& expr = *e;
  if (expr.kind == ExprKind::kLiteral && expr.literal.is_bool()) {
    bool truth = expr.literal.boolean() != negate;
    if (!truth) {
      // Literal FALSE: poison a reserved pseudo-column.
      ColumnRestriction& r = set->columns["..false"];
      r.IntersectEq(Value::Int64(0));
      r.ExcludeValue(Value::Int64(0));
    }
    return true;
  }
  if (expr.kind == ExprKind::kUnary && expr.uop == sql::UnaryOp::kNot) {
    return AbsorbAtom(expr.left, !negate, set);
  }
  if (!negate && expr.kind == ExprKind::kBinary &&
      expr.bop == BinaryOp::kOr) {
    // `col = a OR col = b OR col IN (...)` behaves like an IN-list.
    std::string key;
    std::vector<Value> values;
    if (MatchSameColumnDisjunction(e, &key, &values)) {
      set->columns[key].IntersectIn(values);
      return true;
    }
    return false;
  }
  if (expr.kind == ExprKind::kInList &&
      expr.left->kind == ExprKind::kColumnRef) {
    bool exclude = expr.negated != negate;
    ColumnRestriction& r = set->columns[ColumnKey(*expr.left)];
    if (exclude) {
      r.ExcludeValues(expr.in_values);
    } else {
      r.IntersectIn(expr.in_values);
    }
    return true;
  }
  if (expr.kind == ExprKind::kBinary && sql::IsComparison(expr.bop)) {
    const Expr* col = nullptr;
    const Expr* lit = nullptr;
    BinaryOp op = expr.bop;
    if (expr.left->kind == ExprKind::kColumnRef &&
        expr.right->kind == ExprKind::kLiteral) {
      col = expr.left.get();
      lit = expr.right.get();
    } else if (expr.right->kind == ExprKind::kColumnRef &&
               expr.left->kind == ExprKind::kLiteral) {
      col = expr.right.get();
      lit = expr.left.get();
      op = sql::FlipComparison(op);
    } else {
      return false;
    }
    if (lit->literal.is_null()) return false;  // NULL semantics: stay opaque
    if (negate) {
      switch (op) {
        case BinaryOp::kEq: op = BinaryOp::kNe; break;
        case BinaryOp::kNe: op = BinaryOp::kEq; break;
        case BinaryOp::kLt: op = BinaryOp::kGe; break;
        case BinaryOp::kLe: op = BinaryOp::kGt; break;
        case BinaryOp::kGt: op = BinaryOp::kLe; break;
        case BinaryOp::kGe: op = BinaryOp::kLt; break;
        default: return false;
      }
    }
    set->columns[ColumnKey(*col)].IntersectComparison(op, lit->literal);
    return true;
  }
  return false;
}

}  // namespace

RestrictionSet BuildRestrictions(const std::vector<sql::ExprPtr>& conjuncts) {
  RestrictionSet set;
  for (const auto& c : conjuncts) {
    // Nested ANDs may appear; flatten defensively.
    for (const auto& atom : sql::SplitConjuncts(c)) {
      if (!AbsorbAtom(atom, /*negate=*/false, &set)) {
        set.opaque.push_back(atom);
      }
    }
  }
  return set;
}

bool ProvablyUnsatisfiable(const std::vector<sql::ExprPtr>& conjuncts) {
  return BuildRestrictions(conjuncts).Unsatisfiable();
}

bool ProvablyImplies(const std::vector<sql::ExprPtr>& premises,
                     const sql::ExprPtr& conclusion) {
  if (!conclusion) return true;
  // Structural match against any premise conjunct.
  for (const auto& p : premises) {
    if (sql::ExprEquals(p, conclusion)) return true;
  }
  RestrictionSet premise_set = BuildRestrictions(premises);
  if (premise_set.Unsatisfiable()) return true;  // vacuous
  // The conclusion may itself be a conjunction; all parts must be implied.
  for (const auto& part : sql::SplitConjuncts(conclusion)) {
    bool matched = false;
    for (const auto& p : premises) {
      if (sql::ExprEquals(p, part)) {
        matched = true;
        break;
      }
    }
    if (matched) continue;
    RestrictionSet conclusion_set = BuildRestrictions({part});
    if (!conclusion_set.opaque.empty()) return false;
    for (const auto& [col, conclusion_restriction] : conclusion_set.columns) {
      auto it = premise_set.columns.find(col);
      if (it == premise_set.columns.end()) return false;
      if (!it->second.Implies(conclusion_restriction)) return false;
    }
  }
  return true;
}

std::optional<std::vector<sql::ExprPtr>> SimplifyConjuncts(
    std::vector<sql::ExprPtr> conjuncts) {
  // Flatten and drop literal TRUE.
  std::vector<sql::ExprPtr> flat;
  for (const auto& c : conjuncts) {
    for (const auto& atom : sql::SplitConjuncts(c)) {
      if (atom->kind == ExprKind::kLiteral && atom->literal.is_bool() &&
          atom->literal.boolean()) {
        continue;
      }
      flat.push_back(atom);
    }
  }
  if (ProvablyUnsatisfiable(flat)) return std::nullopt;
  // Drop exact duplicates.
  std::vector<sql::ExprPtr> unique;
  for (const auto& c : flat) {
    bool dup = false;
    for (const auto& u : unique) {
      if (sql::ExprEquals(u, c)) {
        dup = true;
        break;
      }
    }
    if (!dup) unique.push_back(c);
  }
  // Drop conjuncts implied by the rest. "The rest" is the survivors so far
  // plus the not-yet-examined tail, so a mutually-implying pair loses only
  // one member.
  std::vector<sql::ExprPtr> kept;
  for (size_t i = 0; i < unique.size(); ++i) {
    std::vector<sql::ExprPtr> others = kept;
    others.insert(others.end(), unique.begin() + i + 1, unique.end());
    if (!ProvablyImplies(others, unique[i])) kept.push_back(unique[i]);
  }
  return kept;
}

}  // namespace qtrade
