#include "rewrite/view_matcher.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

#include "rewrite/predicate.h"
#include "util/strings.h"

namespace qtrade {

namespace {

using sql::AggFunc;
using sql::BoundColumn;
using sql::BoundOutput;
using sql::BoundQuery;
using sql::Expr;
using sql::ExprKind;
using sql::ExprPtr;

/// Maps view aliases to query aliases (same base table required).
using AliasMap = std::map<std::string, std::string>;

/// Enumerates bijections view-alias -> query-alias preserving table names.
/// Returns all candidate mappings (small: queries rarely repeat tables).
std::vector<AliasMap> EnumerateAliasMaps(const BoundQuery& view,
                                         const BoundQuery& query) {
  std::vector<AliasMap> results;
  if (view.tables.size() != query.tables.size()) return results;
  AliasMap current;
  std::set<size_t> used;
  std::function<void(size_t)> recurse = [&](size_t vi) {
    if (vi == view.tables.size()) {
      results.push_back(current);
      return;
    }
    for (size_t qi = 0; qi < query.tables.size(); ++qi) {
      if (used.count(qi) > 0) continue;
      if (view.tables[vi].table != query.tables[qi].table) continue;
      used.insert(qi);
      current[view.tables[vi].alias] = query.tables[qi].alias;
      recurse(vi + 1);
      current.erase(view.tables[vi].alias);
      used.erase(qi);
    }
  };
  recurse(0);
  return results;
}

/// Rewrites every column ref qualifier through `map` (refs must be in the
/// view's alias space).
ExprPtr MapAliases(const ExprPtr& expr, const AliasMap& map) {
  return sql::RewriteColumnRefs(expr, [&](const Expr& ref) -> ExprPtr {
    auto it = map.find(ref.qualifier);
    if (it == map.end() || it->second == ref.qualifier) return nullptr;
    return sql::Col(it->second, ref.column);
  });
}

/// Key for "the view exposes base column alias.column as output <name>".
struct ColumnAvailability {
  // (query-space alias.column) -> view output column name
  std::map<std::string, std::string> plain;
  // aggregate signature -> view output column name; signature is
  // "FUNC(alias.column)" or "COUNT(*)" in query space, DISTINCT aggs
  // excluded (not decomposable).
  std::map<std::string, std::string> aggregates;

  const std::string* FindPlain(const std::string& alias,
                               const std::string& column) const {
    auto it = plain.find(alias + "." + column);
    return it == plain.end() ? nullptr : &it->second;
  }
};

std::string AggSignature(const Expr& agg, const AliasMap* map) {
  std::string arg = "*";
  if (agg.left != nullptr && agg.left->kind == ExprKind::kColumnRef) {
    std::string alias = agg.left->qualifier;
    if (map != nullptr) {
      auto it = map->find(alias);
      if (it != map->end()) alias = it->second;
    }
    arg = alias + "." + agg.left->column;
  } else if (agg.left != nullptr) {
    return "";  // complex aggregate arguments are not matched
  }
  return std::string(sql::AggFuncName(agg.agg)) + "(" + arg + ")";
}

ColumnAvailability BuildAvailability(const BoundQuery& view,
                                     const AliasMap& map) {
  ColumnAvailability avail;
  for (const auto& out : view.outputs) {
    const Expr& e = *out.expr;
    if (e.kind == ExprKind::kColumnRef) {
      auto it = map.find(e.qualifier);
      std::string alias = it == map.end() ? e.qualifier : it->second;
      avail.plain.emplace(alias + "." + e.column, out.name);
    } else if (e.kind == ExprKind::kAggregate && !e.distinct) {
      std::string sig = AggSignature(e, &map);
      if (!sig.empty()) avail.aggregates.emplace(sig, out.name);
    }
  }
  return avail;
}

/// Rewrites a query-space expression into view-extent space: every column
/// ref alias.column becomes <view>.<output-name>. Fails (returns nullptr)
/// when some referenced column is not exposed by the view.
ExprPtr ToViewSpace(const ExprPtr& expr, const ColumnAvailability& avail,
                    const std::string& view_name, bool* ok) {
  return sql::RewriteColumnRefs(expr, [&](const Expr& ref) -> ExprPtr {
    const std::string* name = avail.FindPlain(ref.qualifier, ref.column);
    if (name == nullptr) {
      *ok = false;
      return nullptr;
    }
    return sql::Col(view_name, *name);
  });
}

/// Canonical text of an equi-join conjunct, order-insensitive.
std::string JoinKey(const BoundColumn& a, const BoundColumn& b) {
  std::string l = a.FullName(), r = b.FullName();
  if (r < l) std::swap(l, r);
  return l + "=" + r;
}

struct MatchAttempt {
  ViewMatch match;
  bool ok = false;
};

MatchAttempt TryMatch(const MaterializedViewDef& view_def,
                      const BoundQuery& query, const AliasMap& map) {
  MatchAttempt attempt;
  const BoundQuery& view = view_def.definition;
  const std::string& view_name = view_def.name;

  // --- Join predicates: require set equality of equi-joins; any other
  // multi-table conjunct in the view must appear structurally in the query.
  std::set<std::string> view_joins, query_joins;
  for (const auto* j : view.JoinPredicates()) {
    BoundColumn l = j->left, r = j->right;
    auto it_l = map.find(l.alias);
    auto it_r = map.find(r.alias);
    if (it_l == map.end() || it_r == map.end()) return attempt;
    l.alias = it_l->second;
    r.alias = it_r->second;
    view_joins.insert(JoinKey(l, r));
  }
  for (const auto* j : query.JoinPredicates()) {
    query_joins.insert(JoinKey(j->left, j->right));
  }
  if (view_joins != query_joins) return attempt;

  // --- Predicate containment: every view conjunct (local or otherwise,
  // excluding the equi-joins handled above) must be implied by the query's
  // conjuncts, so that the view's region contains the query's.
  std::vector<ExprPtr> query_conjuncts;
  for (const auto& c : query.conjuncts) query_conjuncts.push_back(c.expr);
  std::vector<ExprPtr> view_conjuncts_mapped;
  for (const auto& c : view.conjuncts) {
    if (c.kind == sql::ConjunctKind::kEquiJoin) continue;
    view_conjuncts_mapped.push_back(MapAliases(c.expr, map));
  }
  for (const auto& vc : view_conjuncts_mapped) {
    if (!ProvablyImplies(query_conjuncts, vc)) return attempt;
  }

  // --- Residual: query conjuncts not implied by the view's conjuncts.
  std::vector<ExprPtr> residual;
  for (const auto& c : query.conjuncts) {
    if (c.kind == sql::ConjunctKind::kEquiJoin) continue;  // computed by view
    if (ProvablyImplies(view_conjuncts_mapped, c.expr)) continue;
    residual.push_back(c.expr);
  }

  ColumnAvailability avail = BuildAvailability(view, map);

  // Residual predicates must be evaluable over the view's outputs.
  sql::SelectStmt comp;
  comp.from.push_back({view_name, view_name});
  {
    std::vector<ExprPtr> residual_in_view;
    for (const auto& r : residual) {
      bool ok = true;
      ExprPtr mapped = ToViewSpace(r, avail, view_name, &ok);
      if (!ok) return attempt;
      residual_in_view.push_back(mapped);
    }
    comp.where = sql::AndAll(residual_in_view);
  }

  const bool view_aggregated =
      view.has_aggregates || !view.group_by.empty();
  const bool query_aggregated =
      query.has_aggregates || !query.group_by.empty();

  if (view_aggregated && !query_aggregated) return attempt;  // lost detail

  if (view_aggregated) {
    // Aggregate-over-aggregate: query grouping must be coarser or equal.
    // Every query group-by column must be a view group-by column exposed
    // as an output; residuals may only touch group-by columns (already
    // enforced by availability since aggregates are exposed under
    // synthesized names distinct from base columns).
    std::set<std::string> view_groups;  // in query space
    for (const auto& g : view.group_by) {
      auto it = map.find(g.alias);
      if (it == map.end()) return attempt;
      view_groups.insert(it->second + "." + g.column);
    }
    for (const auto& g : query.group_by) {
      if (view_groups.count(g.alias + "." + g.column) == 0) return attempt;
      if (avail.FindPlain(g.alias, g.column) == nullptr) return attempt;
    }
    bool same_grouping = view_groups.size() == query.group_by.size();

    // Build compensation outputs.
    bool needs_reagg = !same_grouping || comp.where != nullptr;
    for (const auto& out : query.outputs) {
      const Expr& e = *out.expr;
      sql::SelectItem item;
      item.alias = out.name;
      if (e.kind == ExprKind::kColumnRef) {
        const std::string* name = avail.FindPlain(e.qualifier, e.column);
        if (name == nullptr) return attempt;
        item.expr = sql::Col(view_name, *name);
      } else if (e.kind == ExprKind::kAggregate && !e.distinct) {
        std::string sig = AggSignature(e, nullptr);
        if (sig.empty()) return attempt;
        auto found = avail.aggregates.find(sig);
        if (found != avail.aggregates.end()) {
          // Same aggregate present in the view.
          ExprPtr col = sql::Col(view_name, found->second);
          switch (e.agg) {
            case AggFunc::kSum:
              item.expr = needs_reagg ? sql::Agg(AggFunc::kSum, col) : col;
              break;
            case AggFunc::kCount:
              // Counts add up across merged groups.
              item.expr = needs_reagg ? sql::Agg(AggFunc::kSum, col) : col;
              break;
            case AggFunc::kMin:
              item.expr = needs_reagg ? sql::Agg(AggFunc::kMin, col) : col;
              break;
            case AggFunc::kMax:
              item.expr = needs_reagg ? sql::Agg(AggFunc::kMax, col) : col;
              break;
            case AggFunc::kAvg:
              // AVG of AVGs is wrong; only exact grouping can reuse it.
              if (needs_reagg) return attempt;
              item.expr = col;
              break;
          }
        } else if (e.agg == AggFunc::kAvg) {
          // AVG(x) = SUM(sum_x) / SUM(count).
          std::string sum_sig = AggSignature(
              *sql::Agg(AggFunc::kSum, e.left), nullptr);
          auto sum_it = avail.aggregates.find(sum_sig);
          auto cnt_it = avail.aggregates.find("COUNT(*)");
          if (cnt_it == avail.aggregates.end()) {
            cnt_it = avail.aggregates.find(AggSignature(
                *sql::Agg(AggFunc::kCount, e.left), nullptr));
          }
          if (sum_it == avail.aggregates.end() ||
              cnt_it == avail.aggregates.end()) {
            return attempt;
          }
          ExprPtr sum_col = sql::Col(view_name, sum_it->second);
          ExprPtr cnt_col = sql::Col(view_name, cnt_it->second);
          if (needs_reagg) {
            sum_col = sql::Agg(AggFunc::kSum, sum_col);
            cnt_col = sql::Agg(AggFunc::kSum, cnt_col);
          }
          item.expr = sql::Binary(sql::BinaryOp::kDiv, sum_col, cnt_col);
        } else {
          return attempt;
        }
      } else {
        return attempt;  // complex expressions over aggregates: skip
      }
      comp.items.push_back(std::move(item));
    }
    if (needs_reagg) {
      for (const auto& g : query.group_by) {
        const std::string* name = avail.FindPlain(g.alias, g.column);
        comp.group_by.push_back(sql::Col(view_name, *name));
      }
    }
    attempt.match.reaggregates = needs_reagg;
    attempt.match.exact = !needs_reagg && comp.where == nullptr;
  } else {
    // Plain view. Query outputs (incl. aggregates over base columns) must
    // be computable from exposed columns.
    bool ok = true;
    for (const auto& out : query.outputs) {
      sql::SelectItem item;
      item.alias = out.name;
      item.expr = ToViewSpace(out.expr, avail, view_name, &ok);
      if (!ok) return attempt;
      comp.items.push_back(std::move(item));
    }
    if (query_aggregated) {
      for (const auto& g : query.group_by) {
        const std::string* name = avail.FindPlain(g.alias, g.column);
        if (name == nullptr) return attempt;
        comp.group_by.push_back(sql::Col(view_name, *name));
      }
      if (query.having) {
        ExprPtr having = ToViewSpace(query.having, avail, view_name, &ok);
        if (!ok) return attempt;
        comp.having = having;
      }
      attempt.match.reaggregates = true;
    }
    attempt.match.exact =
        !query_aggregated && comp.where == nullptr && residual.empty();
  }

  comp.distinct = query.distinct;
  comp.limit = query.limit;
  for (const auto& o : query.order_by) {
    // Order keys that equal a SELECT-list expression (typical for
    // ORDER BY <aggregate alias>) map to the already-compensated item.
    ExprPtr mapped;
    for (size_t i = 0; i < query.outputs.size(); ++i) {
      if (sql::ExprEquals(query.outputs[i].expr, o.expr) &&
          i < comp.items.size()) {
        mapped = comp.items[i].expr;
        break;
      }
    }
    if (mapped == nullptr) {
      bool ok = true;
      mapped = ToViewSpace(o.expr, avail, view_name, &ok);
      if (!ok) return attempt;  // unmappable ordering: conservative reject
    }
    comp.order_by.push_back({mapped, o.ascending});
  }

  attempt.match.view = &view_def;
  attempt.match.compensation = std::move(comp);
  attempt.ok = true;
  return attempt;
}

}  // namespace

TableDef ViewExtentSchema(const MaterializedViewDef& view) {
  TableDef def;
  def.name = view.name;
  for (const auto& out : view.definition.outputs) {
    def.columns.push_back({out.name, out.type});
  }
  return def;
}

std::optional<ViewMatch> MatchViewToQuery(const MaterializedViewDef& view,
                                          const sql::BoundQuery& query) {
  for (const AliasMap& map :
       EnumerateAliasMaps(view.definition, query)) {
    MatchAttempt attempt = TryMatch(view, query, map);
    if (attempt.ok) return attempt.match;
  }
  return std::nullopt;
}

std::vector<ViewMatch> MatchViews(const sql::BoundQuery& query,
                                  const NodeCatalog& catalog) {
  std::vector<ViewMatch> matches;
  for (const auto& view : catalog.views()) {
    if (auto m = MatchViewToQuery(view, query)) {
      matches.push_back(std::move(*m));
    }
  }
  return matches;
}

}  // namespace qtrade
