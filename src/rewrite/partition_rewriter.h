// Seller-side query rewriting (paper §3.4): given a query asked by a
// buyer, remove the relations this node holds no data for and restrict
// the remaining base-relation extents to the partitions available
// locally, simplifying the WHERE clause in the process.
//
// The output is the node's *SPJ core* contribution: tables it can serve,
// conjuncts it can apply (including the added partition restrictions),
// and the columns it must ship so the buyer can finish the query
// (projection outputs, grouping/aggregate inputs, and join columns to the
// dropped relations). Aggregation/ordering are intentionally left to the
// offer generator, which decides per-offer whether they can be pushed.
#ifndef QTRADE_REWRITE_PARTITION_REWRITER_H_
#define QTRADE_REWRITE_PARTITION_REWRITER_H_

#include <optional>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "sql/analyzer.h"
#include "util/status.h"

namespace qtrade {

/// Which part of one base relation a rewrite covers.
struct AliasCoverage {
  std::string alias;
  std::string table;
  /// Partitions whose rows the rewrite accounts for: hosted-and-feasible
  /// partitions plus partitions that are provably empty under the query's
  /// own predicates. This is what the buyer may mark as covered.
  std::vector<std::string> covered_partitions;
  /// Hosted partitions the seller would actually scan.
  std::vector<std::string> scanned_partitions;
  /// True when covered_partitions spans every partition of the table.
  bool complete = false;
};

/// Result of rewriting a query against one node's local data.
struct LocalRewrite {
  /// SPJ core over the kept tables: outputs are plain columns (the ones
  /// the buyer needs), conjuncts include the partition restrictions.
  sql::BoundQuery core;
  std::vector<AliasCoverage> coverage;  // one entry per kept alias
  /// True when every table of the original query was kept.
  bool all_tables_kept = false;

  const AliasCoverage* FindCoverage(const std::string& alias) const;
};

/// Applies the §3.4 algorithm. Returns nullopt when this node cannot
/// contribute anything (hosts no feasible fragment of any referenced
/// table). Errors indicate malformed input, not inability to contribute.
Result<std::optional<LocalRewrite>> RewriteForLocalPartitions(
    const sql::BoundQuery& query, const NodeCatalog& catalog);

/// Builds the restriction predicate for `alias` selecting exactly
/// `partitions` (OR of their predicates, collapsed to IN-list form when
/// they are equalities on one column). Returns nullptr when `partitions`
/// includes a whole-table partition.
sql::ExprPtr PartitionRestriction(
    const std::vector<const PartitionDef*>& partitions,
    const std::string& alias);

}  // namespace qtrade

#endif  // QTRADE_REWRITE_PARTITION_REWRITER_H_
