// Materialized-view matching (paper §3.5): decides whether a query can be
// answered from a node's materialized view and, if so, produces the
// compensation query to run over the view extent. Supports the paper's
// flagship case — an aggregation query whose grouping is coarser than the
// view's — plus plain SPJ containment with residual predicates.
//
// The compensation is returned as a SelectStmt over a synthetic one-table
// schema: table name = view name, columns = the view's output columns.
// Sellers cost it against the view's statistics and (in the execution
// engine) run it against the materialized extent.
#ifndef QTRADE_REWRITE_VIEW_MATCHER_H_
#define QTRADE_REWRITE_VIEW_MATCHER_H_

#include <optional>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "sql/analyzer.h"
#include "util/status.h"

namespace qtrade {

/// A successful match of a query against one materialized view.
struct ViewMatch {
  const MaterializedViewDef* view = nullptr;
  /// Query to evaluate over the view extent (FROM <view-name>).
  sql::SelectStmt compensation;
  /// True when the compensation is a bare projection (no residual filter,
  /// no re-aggregation): the view answers the query as-is.
  bool exact = false;
  /// True when the compensation re-aggregates coarser groups.
  bool reaggregates = false;
};

/// Schema of the view extent as a single synthetic table (name = view
/// name, columns = view output columns). What compensation queries bind
/// against.
TableDef ViewExtentSchema(const MaterializedViewDef& view);

/// Tries to answer `query` from `view`. Returns nullopt when the view
/// provably cannot be used (conservative; false negatives allowed).
std::optional<ViewMatch> MatchViewToQuery(const MaterializedViewDef& view,
                                          const sql::BoundQuery& query);

/// All usable views of `catalog` for `query`.
std::vector<ViewMatch> MatchViews(const sql::BoundQuery& query,
                                  const NodeCatalog& catalog);

}  // namespace qtrade

#endif  // QTRADE_REWRITE_VIEW_MATCHER_H_
