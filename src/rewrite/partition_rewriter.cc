#include "rewrite/partition_rewriter.h"

#include <algorithm>
#include <set>

#include "rewrite/predicate.h"

namespace qtrade {

namespace {

using sql::BoundColumn;
using sql::BoundOutput;
using sql::BoundQuery;
using sql::ExprPtr;

/// Collects every (alias, column) referenced in `expr` whose alias is in
/// `kept`, into `needed` (as "alias\0column" keys for set semantics).
void CollectNeeded(const ExprPtr& expr, const std::set<std::string>& kept,
                   std::set<std::pair<std::string, std::string>>* needed) {
  sql::ForEachColumnRef(expr, [&](const sql::Expr& ref) {
    if (kept.count(ref.qualifier) > 0) {
      needed->insert({ref.qualifier, ref.column});
    }
  });
}

}  // namespace

const AliasCoverage* LocalRewrite::FindCoverage(
    const std::string& alias) const {
  for (const auto& c : coverage) {
    if (c.alias == alias) return &c;
  }
  return nullptr;
}

sql::ExprPtr PartitionRestriction(
    const std::vector<const PartitionDef*>& partitions,
    const std::string& alias) {
  // A whole-table partition means no restriction.
  for (const PartitionDef* p : partitions) {
    if (p->predicate == nullptr) return nullptr;
  }
  if (partitions.empty()) return nullptr;
  // Collapse `col = v1 OR col = v2 ...` into `col IN (v1, v2, ...)`.
  std::string common_column;
  std::vector<Value> values;
  bool in_form = true;
  for (const PartitionDef* p : partitions) {
    const sql::Expr& e = *p->predicate;
    if (e.kind == sql::ExprKind::kBinary && e.bop == sql::BinaryOp::kEq &&
        e.left->kind == sql::ExprKind::kColumnRef &&
        e.right->kind == sql::ExprKind::kLiteral) {
      if (common_column.empty()) common_column = e.left->column;
      if (e.left->column != common_column) {
        in_form = false;
        break;
      }
      values.push_back(e.right->literal);
    } else {
      in_form = false;
      break;
    }
  }
  if (in_form) {
    if (values.size() == 1) {
      return sql::Eq(sql::Col(alias, common_column),
                     sql::Lit(std::move(values[0])));
    }
    return sql::InList(sql::Col(alias, common_column), std::move(values));
  }
  // General case: OR of qualified partition predicates.
  ExprPtr acc;
  for (const PartitionDef* p : partitions) {
    ExprPtr qualified = p->PredicateFor(alias);
    acc = acc ? sql::Or(acc, qualified) : qualified;
  }
  return acc;
}

Result<std::optional<LocalRewrite>> RewriteForLocalPartitions(
    const sql::BoundQuery& query, const NodeCatalog& catalog) {
  const FederationSchema& federation = catalog.federation();

  LocalRewrite rewrite;
  std::set<std::string> kept_aliases;

  // Step 1 (paper): for each referenced relation, find the locally hosted
  // partitions whose predicate is consistent with the query's own local
  // predicates on that relation; drop relations with no feasible fragment.
  for (const auto& table_ref : query.tables) {
    const TablePartitioning* partitioning =
        federation.FindPartitioning(table_ref.table);
    if (partitioning == nullptr) {
      return Status::BindError("query references unknown table: " +
                               table_ref.table);
    }
    std::vector<ExprPtr> local_preds = query.LocalPredicates(table_ref.alias);

    AliasCoverage coverage;
    coverage.alias = table_ref.alias;
    coverage.table = table_ref.table;
    std::vector<const PartitionDef*> feasible_local;
    bool all_accounted = true;
    for (const auto& part : partitioning->partitions) {
      // Is this partition provably empty under the query's predicates?
      bool infeasible = false;
      if (part.predicate != nullptr) {
        std::vector<ExprPtr> together = local_preds;
        together.push_back(part.PredicateFor(table_ref.alias));
        infeasible = ProvablyUnsatisfiable(together);
      }
      if (infeasible) {
        // Contributes no rows to this query: covered for free.
        coverage.covered_partitions.push_back(part.id);
        continue;
      }
      if (catalog.HostsPartition(part.id)) {
        coverage.covered_partitions.push_back(part.id);
        coverage.scanned_partitions.push_back(part.id);
        feasible_local.push_back(&part);
      } else {
        all_accounted = false;
      }
    }
    coverage.complete = all_accounted;
    if (feasible_local.empty()) {
      // Node has no usable fragment of this relation: relation is dropped
      // (non-local, per the paper's algorithm).
      continue;
    }
    kept_aliases.insert(table_ref.alias);
    rewrite.core.tables.push_back(table_ref);
    rewrite.coverage.push_back(std::move(coverage));

    // Partition restriction for this alias, skipping it when the local
    // feasible partitions already account for every feasible partition.
    // (Restriction only matters when foreign feasible partitions exist.)
    const AliasCoverage& cov = rewrite.coverage.back();
    bool needs_restriction = !cov.complete;
    if (needs_restriction) {
      ExprPtr restriction =
          PartitionRestriction(feasible_local, table_ref.alias);
      if (restriction != nullptr) {
        // Keep only if not already implied by the query's own predicates.
        if (!ProvablyImplies(local_preds, restriction)) {
          sql::Conjunct conj;
          conj.expr = restriction;
          conj.aliases = {table_ref.alias};
          conj.kind = sql::ConjunctKind::kLocal;
          rewrite.core.conjuncts.push_back(std::move(conj));
        }
      }
    }
  }

  if (rewrite.core.tables.empty()) return std::optional<LocalRewrite>();
  rewrite.all_tables_kept =
      rewrite.core.tables.size() == query.tables.size();

  // Step 2: keep the conjuncts whose aliases all survived; simplify each
  // alias's local predicate set.
  for (const auto& conj : query.conjuncts) {
    bool all_kept = std::all_of(
        conj.aliases.begin(), conj.aliases.end(),
        [&](const std::string& a) { return kept_aliases.count(a) > 0; });
    if (all_kept) rewrite.core.conjuncts.push_back(conj);
  }
  {
    // Simplification pass over the whole conjunct set (duplicates and
    // implied restrictions vanish; contradiction means empty result —
    // treated as "cannot contribute").
    std::vector<ExprPtr> exprs;
    for (const auto& c : rewrite.core.conjuncts) exprs.push_back(c.expr);
    auto simplified = SimplifyConjuncts(std::move(exprs));
    if (!simplified.has_value()) return std::optional<LocalRewrite>();
    std::vector<sql::Conjunct> new_conjuncts;
    for (const auto& e : *simplified) {
      // Re-classify (cheap) to keep Conjunct metadata accurate.
      sql::Conjunct conj;
      conj.expr = e;
      conj.aliases = sql::ReferencedQualifiers(e);
      if (conj.aliases.size() <= 1) {
        conj.kind = sql::ConjunctKind::kLocal;
      } else {
        const sql::Expr& expr = *e;
        if (expr.kind == sql::ExprKind::kBinary &&
            expr.bop == sql::BinaryOp::kEq &&
            expr.left->kind == sql::ExprKind::kColumnRef &&
            expr.right->kind == sql::ExprKind::kColumnRef) {
          conj.kind = sql::ConjunctKind::kEquiJoin;
          conj.left.alias = expr.left->qualifier;
          conj.left.column = expr.left->column;
          conj.right.alias = expr.right->qualifier;
          conj.right.column = expr.right->column;
        } else {
          conj.kind = sql::ConjunctKind::kOtherJoin;
        }
      }
      new_conjuncts.push_back(std::move(conj));
    }
    rewrite.core.conjuncts = std::move(new_conjuncts);
  }

  // Step 3: compute the columns the buyer needs from this node.
  std::set<std::pair<std::string, std::string>> needed;
  for (const auto& out : query.outputs) {
    CollectNeeded(out.expr, kept_aliases, &needed);
  }
  for (const auto& g : query.group_by) {
    if (kept_aliases.count(g.alias) > 0) needed.insert({g.alias, g.column});
  }
  CollectNeeded(query.having, kept_aliases, &needed);
  for (const auto& o : query.order_by) {
    CollectNeeded(o.expr, kept_aliases, &needed);
  }
  // Join/cross conjuncts to dropped relations stay at the buyer; their
  // kept-side columns must be shipped.
  for (const auto& conj : query.conjuncts) {
    bool touches_dropped = std::any_of(
        conj.aliases.begin(), conj.aliases.end(),
        [&](const std::string& a) { return kept_aliases.count(a) == 0; });
    if (touches_dropped) CollectNeeded(conj.expr, kept_aliases, &needed);
  }

  for (const auto& [alias, column] : needed) {
    const sql::TableRef* table_ref = rewrite.core.FindTable(alias);
    if (table_ref == nullptr) continue;
    const TableDef* def = federation.FindTable(table_ref->table);
    auto idx = def->FindColumn(column);
    if (!idx.ok()) return idx.status();
    BoundOutput out;
    out.expr = sql::Col(alias, column);
    out.name = column;
    out.type = def->columns[idx.value()].type;
    rewrite.core.outputs.push_back(std::move(out));
  }
  // A query like SELECT COUNT(*) over fully-local data may need no
  // specific column; ship the first column of the first kept table so the
  // core stays a valid query.
  if (rewrite.core.outputs.empty()) {
    const sql::TableRef& first = rewrite.core.tables.front();
    const TableDef* def = federation.FindTable(first.table);
    BoundOutput out;
    out.expr = sql::Col(first.alias, def->columns.front().name);
    out.name = def->columns.front().name;
    out.type = def->columns.front().type;
    rewrite.core.outputs.push_back(std::move(out));
  }

  return std::optional<LocalRewrite>(std::move(rewrite));
}

}  // namespace qtrade
