// Deterministic strategy-matrix explorer: sweeps every (seller
// strategy, buyer strategy) pairing over a multi-round negotiation
// workload on a fixed micro-federation and asserts the economic
// invariants of the pricing layer (ROADMAP item 4, backed by "Pricing
// Queries (Approximately) Optimally" / "Revenue Maximization for Query
// Pricing", PAPERS.md):
//
//   - no arbitrage: whenever one quoted commodity subsumes another
//     (canonical-shape containment + coverage inclusion, see
//     opt/signature.h), the contained one is never priced higher. For
//     plain strategies this holds within each outcome epoch (the margin
//     only moves on award feedback); ContainmentAwareStrategy must hold
//     it across the whole history (its price book pins quotes).
//   - bounded exploitation: the buyer's total plan cost in any cell
//     stays within a factor of the same buyer's all-truthful baseline.
//   - convergence: per-commodity quotes stop moving (within tolerance)
//     inside the round budget — this is the invariant that catches
//     non-converging AdaptiveMarkupStrategy parameterizations (steps so
//     large the margin ping-pongs between the clamp rails).
//   - replay: re-running a cell from the same seed is byte-identical
//     (every quote, cost, and winner).
//
// Template: the fault-schedule explorer (sim/explorer.h) — same world,
// same determinism discipline, invariants instead of fault recovery.
#ifndef QTRADE_SIM_STRATEGY_MATRIX_H_
#define QTRADE_SIM_STRATEGY_MATRIX_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "opt/signature.h"
#include "trading/strategy.h"

namespace qtrade {

struct StrategyMatrixOptions {
  /// Workload repetitions per cell; each round runs every workload
  /// query once, so a cell sees rounds * 4 negotiations. The default
  /// gives sanely parameterized adaptive strategies enough feedback to
  /// settle at their clamp rails (AdaptiveMarkupStrategy's -2 * step
  /// loss rule drifts mixed win/loss sellers down by ~step/2 per
  /// negotiation, so from the default 0.3 margin the rail is ~12
  /// negotiations away) while still failing parameterizations that
  /// ping-pong forever.
  int rounds = 6;
  uint64_t seed = 42;
  /// Buyer total plan cost in a cell must be <= factor * the same
  /// buyer's all-truthful baseline cost.
  double cost_bound_factor = 2.2;
  /// Convergence tolerance: a commodity's final two quotes must agree
  /// within this relative spread.
  double convergence_tol = 0.15;
  /// Run every cell twice and require byte-identical digests.
  bool check_replay = true;
};

/// One pricing decision as the recording decorator saw it.
struct QuoteEvent {
  std::string seller;
  /// Per-seller ordinal. Strategy calls are serialized under the seller
  /// engine's mutex and ordered deterministically, so (seller, seq) is
  /// a stable total order however the transport interleaves sellers.
  int seq = 0;
  int negotiation = 0;  ///< workload ordinal the quote belongs to
  /// Outcomes this seller had observed before quoting: within one epoch
  /// a plain strategy's margin is frozen.
  int epoch = 0;
  std::string signature;  ///< canonical signature ("" if unavailable)
  QueryShape shape;
  std::vector<std::string> coverage;  ///< sorted "t<i>:<partition>"
  double true_cost = 0;
  double quote = 0;
};

/// A seller strategy population member.
struct SellerKind {
  std::string name;
  /// Arbitrage must hold across the whole history (price-book
  /// strategies), not just within one outcome epoch.
  bool whole_history_arbitrage = false;
  std::function<std::unique_ptr<SellerStrategy>()> make;
};

/// A buyer population member (DefaultBuyerStrategy parameterization).
struct BuyerKind {
  std::string name;
  double slack = 1.25;
  double bargain_discount = 0.85;
};

struct CellOutcome {
  std::string seller_kind;
  std::string buyer_kind;
  int negotiations = 0;
  /// Subsumption-comparable quote pairs the arbitrage check covered
  /// (0 would mean the invariant was vacuous for this cell).
  int containment_pairs = 0;
  double total_cost = 0;  ///< sum of winning plan costs
  double paid = 0;        ///< sum of remote-leaf quotes (buyer spend)
  double honest = 0;      ///< sum of winners' true costs
  double revenue = 0;     ///< paid - honest (seller surplus)
  /// Same-buyer all-truthful total_cost (< 0: no baseline supplied).
  double baseline_cost = -1;
  /// First workload ordinal after which every commodity's quotes stay
  /// within tolerance of their final value.
  int rounds_to_converge = 0;
  bool replay_identical = true;
  std::string digest;
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }
};

struct MatrixReport {
  std::vector<CellOutcome> cells;
  int cells_run = 0;
  int cells_violating = 0;

  bool ok() const { return cells_run > 0 && cells_violating == 0; }
};

class StrategyMatrixExplorer {
 public:
  explicit StrategyMatrixExplorer(StrategyMatrixOptions options = {});

  const StrategyMatrixOptions& options() const { return options_; }

  /// The two populations: truthful, adaptive-markup, containment-aware,
  /// history-adaptive sellers x four DefaultBuyerStrategy
  /// parameterizations (16 cells).
  static std::vector<SellerKind> SellerKinds();
  static std::vector<BuyerKind> BuyerKinds();

  /// The per-round workload: a scan, a slice contained in it, a
  /// join-aggregate, and a deeper slice contained in both scans — so
  /// the containment lattice always has comparable pairs. Negotiation
  /// protocols alternate auction / bargaining across the workload.
  static std::vector<std::string> WorkloadSql();

  /// True when `super` subsumes `sub` (shape containment + coverage
  /// inclusion) — the pricing-lattice order the invariants use.
  static bool Covers(const QuoteEvent& super, const QuoteEvent& sub);

  /// Arbitrage check over a cell's quote log. With `whole_history` the
  /// ordering must hold across epochs (price-book strategies);
  /// otherwise only same-epoch, same-seller pairs are compared. `pairs`
  /// (optional) reports how many comparable pairs were checked.
  static std::vector<std::string> CheckArbitrage(
      const std::vector<QuoteEvent>& events, bool whole_history,
      double rel_eps, double abs_eps, int* pairs = nullptr);

  /// Convergence check: for every live commodity quoted at least
  /// twice, the final two quotes agree within `tol` (relative). A
  /// commodity is live when its final quote falls at negotiation >=
  /// `live_after`; commodities the market stopped requesting earlier
  /// (derived subqueries shift while margins move) can never quote
  /// again, so they are exempt — only still-traded prices must have
  /// stopped moving. Returns false on any still-moving live commodity;
  /// `rounds_to_converge` (optional) gets the first workload ordinal
  /// after which every live commodity's quotes stay within tolerance
  /// of their final values.
  static bool CheckConvergence(const std::vector<QuoteEvent>& events,
                               double tol, int live_after = 0,
                               int* rounds_to_converge = nullptr);

  /// Runs one cell: a fresh world per run, rounds * 4 negotiations on
  /// one persistent federation (strategies learn across them), all
  /// invariants checked. `baseline_cost` < 0 skips the cost-bound
  /// check (used for the truthful baselines themselves).
  CellOutcome RunCell(const SellerKind& seller, const BuyerKind& buyer,
                      double baseline_cost = -1) const;

  /// The full 16-cell sweep: truthful baselines per buyer kind first,
  /// then every pairing against its baseline.
  MatrixReport Explore() const;

 private:
  struct CellRun {
    std::vector<QuoteEvent> events;
    std::vector<double> costs;    // winning plan cost per negotiation
    double paid = 0;
    double honest = 0;
    std::string digest;
    std::string error;  // first failure, empty when clean
  };

  CellRun RunOnce(const SellerKind& seller, const BuyerKind& buyer) const;

  StrategyMatrixOptions options_;
};

}  // namespace qtrade

#endif  // QTRADE_SIM_STRATEGY_MATRIX_H_
