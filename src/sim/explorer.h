// Deterministic fault-schedule explorer: enumerates (and samples) fault
// schedules over a fixed replicated micro-federation, drives one full
// negotiation + execution per schedule, and checks the recovery
// invariants end to end:
//
//   - the run never crashes or hangs, whatever the schedule;
//   - whenever a plan is produced it stays executable — award recovery
//     (retry, re-award, scoped replan) reroutes around dead sellers —
//     and its answer equals the centralized reference;
//   - the empty schedule is byte-identical to a raw run without the
//     fault layer or the resilience decorator (metrics, cost, plan).
//
// The world is a 4-seller ring over the paper's telecom schema: the
// buyer (athens) hosts no data, one seller (corfu) holds every
// partition, and three sellers hold overlapping 2-partition slices —
// any two sellers can die and every partition is still reachable, so
// systematic pair schedules are always recoverable while still forcing
// re-awards and replans.
#ifndef QTRADE_SIM_EXPLORER_H_
#define QTRADE_SIM_EXPLORER_H_

#include <string>
#include <vector>

#include "net/wire.h"
#include "sim/fault_schedule.h"
#include "trading/buyer_engine.h"
#include "util/random.h"

namespace qtrade {

struct ExplorerOptions {
  /// Fault tolerance on: resilience (retry + breaker) during negotiation
  /// and award recovery (re-award + scoped replan) at execution. Off,
  /// the explorer measures how often plain runs fail under the same
  /// schedules (the recovery layer's control experiment).
  bool recovery = true;
  /// Cap on total schedules explored; 0 = everything (systematic sweep +
  /// join singles + random tail). The systematic prefix is stable, so a
  /// capped run is a prefix of the full one.
  int max_schedules = 0;
  /// Seeded random multi-event schedules appended after the sweep.
  int random_schedules = 24;
  uint64_t seed = 42;
  /// Buyer's per-round offer deadline (simulated ms): delayed replies
  /// land after it and are discarded as late.
  double offer_timeout_ms = 5000;
  /// Also run every single-event schedule against the aggregation join
  /// query (the scan query gets the full systematic sweep).
  bool include_join_query = true;
  /// kAuction by default so tick-level faults have traffic to hit.
  NegotiationProtocol protocol = NegotiationProtocol::kAuction;
};

/// The outcome of one schedule: what happened, and enough of the run's
/// fingerprint (metrics, cost, plan, winners) to compare runs.
struct ScheduleOutcome {
  FaultSchedule schedule;
  std::string sql;
  bool optimized = false;       // Optimize produced a plan
  bool executed = false;        // Execute returned rows
  bool answer_matches = false;  // rows == centralized reference
  std::string error;            // first failure, human-readable
  TradeMetrics metrics;         // snapshot AFTER Execute (recovery incl.)
  double cost = 0;
  std::string plan_explain;
  std::vector<std::string> winning_offer_ids;

  bool ok() const { return optimized && executed && answer_matches; }
};

struct ExplorerReport {
  int schedules_run = 0;
  int failures = 0;
  int64_t total_retries = 0;
  int64_t total_breaker_trips = 0;
  int64_t total_deliveries_failed = 0;
  int64_t total_reawards = 0;
  int64_t total_reroutes = 0;
  /// Detail for the first few failing schedules (diagnostics).
  std::vector<ScheduleOutcome> failed;
};

class FaultScheduleExplorer {
 public:
  explicit FaultScheduleExplorer(ExplorerOptions options = {});

  const ExplorerOptions& options() const { return options_; }

  /// The seller node names of the explorer world (schedule targets).
  static std::vector<std::string> SellerNodes();
  static std::string ScanQuerySql();
  static std::string JoinQuerySql();

  /// The systematic sweep for one query: the empty schedule, every
  /// single-event schedule (each kind x seller x early round), and every
  /// unordered pair of those singles.
  std::vector<FaultSchedule> SystematicSchedules() const;

  /// One seeded random schedule: 1-3 events, at most two distinct nodes
  /// carrying fail-type events (so ring coverage survives).
  FaultSchedule RandomSchedule(Rng& rng) const;

  /// Builds a fresh world, wires the schedule in (scripted transport +
  /// delivery interceptor), optimizes and executes `sql`, and compares
  /// the answer to the centralized reference. Never throws; failures
  /// come back in the outcome.
  ScheduleOutcome Run(const FaultSchedule& schedule,
                      const std::string& sql) const;

  /// Reference run on a fresh world with NO fault layer and NO
  /// resilience decorator: what the raw engine does. The empty schedule
  /// must match this byte for byte (deterministic metrics, cost, plan).
  ScheduleOutcome RunPlain(const std::string& sql) const;

  /// The full exploration: systematic sweep on the scan query, single
  /// events on the join query, then the seeded random tail.
  ExplorerReport Explore() const;

 private:
  ScheduleOutcome RunInternal(const FaultSchedule& schedule,
                              const std::string& sql, bool plain) const;

  ExplorerOptions options_;
};

}  // namespace qtrade

#endif  // QTRADE_SIM_EXPLORER_H_
