// Deterministic fault schedules: a scripted alternative to the
// probabilistic FaultyTransport. A FaultSchedule is an explicit list of
// fault events — "drop corfu's reply to broadcast 1", "node myconos is
// dead from broadcast 0 on" — and ScriptedFaultTransport is a Transport
// decorator that replays exactly that list, nothing more. Because a
// schedule is data, the FaultScheduleExplorer (sim/explorer.h) can
// enumerate the schedule space systematically and assert recovery
// invariants over every point, instead of sampling drop rates and hoping
// the interesting interleavings come up.
#ifndef QTRADE_SIM_FAULT_SCHEDULE_H_
#define QTRADE_SIM_FAULT_SCHEDULE_H_

#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "net/transport.h"

namespace qtrade {

enum class FaultKind {
  /// Lose one seller's reply to one RFB broadcast (the seller computed;
  /// the reply never lands). Retryable: a retry is a new broadcast
  /// ordinal, so it succeeds unless the schedule targets that too.
  kDropReply,
  /// Deliver one seller's reply to one broadcast late by `delay_ms`
  /// (past the buyer's offer deadline it counts as an offers_late
  /// discard — degradation, not retry: the reply was not lost).
  kDelayReply,
  /// Lose one auction-tick / counter-offer reply from a seller (the
  /// round-th unicast negotiation message sent to that node).
  kDropTick,
  /// Lose the round-th award batch sent to a seller (fire-and-forget:
  /// only strategy feedback is affected, never the sold answers).
  kDropAward,
  /// The node dies: from broadcast ordinal `round` on, every message to
  /// or from it is lost, and its award deliveries fail. Persistent —
  /// retries keep failing and the circuit breaker trips.
  kFailNode,
  /// The node negotiates normally but dies between award and delivery:
  /// ExecuteDistributed fails on it (via the federation's delivery
  /// interceptor), exercising re-award / scoped replan.
  kFailDelivery,
};

const char* FaultKindName(FaultKind kind);

/// One scripted fault. `round` indexes the targeted message: the RFB
/// broadcast ordinal for kDropReply/kDelayReply/kFailNode (every
/// BroadcastRfb through the transport counts, including retries and
/// replans), the per-node unicast ordinal for kDropTick, the per-node
/// award-batch ordinal for kDropAward. Ignored by kFailDelivery.
struct FaultEvent {
  FaultKind kind = FaultKind::kDropReply;
  std::string node;
  int round = 0;
  double delay_ms = 10000;  // kDelayReply only

  std::string Describe() const;
};

struct FaultSchedule {
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }
  /// "drop_reply(corfu@0) + fail_node(naxos@1)"; "(no faults)" if empty.
  std::string Describe() const;
};

struct ScriptedFaultStats {
  int64_t replies_dropped = 0;   // kDropReply hits
  int64_t replies_delayed = 0;   // kDelayReply hits
  int64_t ticks_dropped = 0;     // kDropTick hits
  int64_t awards_dropped = 0;    // kDropAward hits
  int64_t node_failures = 0;     // messages swallowed by kFailNode
};

/// Transport decorator replaying one FaultSchedule. With an empty
/// schedule it is a pure pass-through: no accounting, timing or ordering
/// changes — the explorer's zero-fault byte-identity invariant depends
/// on that. Thread-safe: ordinals and stats are taken under a mutex on
/// the dispatching thread; the inner transport may still parallelize
/// seller handlers underneath.
class ScriptedFaultTransport : public Transport {
 public:
  ScriptedFaultTransport(Transport* inner, FaultSchedule schedule);

  void Register(NodeEndpoint* endpoint) override;
  NodeEndpoint* endpoint(const std::string& name) const override;
  std::vector<std::string> NodeNames() const override;

  std::vector<OfferReply> BroadcastRfb(const std::string& from,
                                       const Rfb& rfb,
                                       const std::vector<std::string>& to,
                                       const char* rfb_kind = "rfb",
                                       const char* offer_kind =
                                           "offer") override;
  TickReply SendAuctionTick(const std::string& from, const std::string& to,
                            const AuctionTick& tick) override;
  TickReply SendCounterOffer(const std::string& from, const std::string& to,
                             const CounterOffer& counter) override;
  double SendAwards(const std::string& from, const std::string& to,
                    const AwardBatch& batch) override;
  void AdvanceRound(double ms) override;
  SimNetwork* network() override;
  void SetObservability(obs::Tracer* tracer,
                        obs::MetricsRegistry* metrics) override;

  /// True once a kFailNode event for `node` has activated (its broadcast
  /// ordinal has been reached).
  bool NodeDown(const std::string& node) const;
  /// True when award delivery from `node` must fail: any kFailDelivery
  /// event for it, or the node is down. Wired into the federation's
  /// delivery interceptor by the explorer.
  bool DeliveryFails(const std::string& node) const;

  ScriptedFaultStats stats() const;
  const FaultSchedule& schedule() const { return schedule_; }

 private:
  /// Fault replies to unicast negotiation messages (ticks and
  /// counter-offers share one per-node ordinal space).
  TickReply Unicast(const std::string& from, const std::string& to,
                    const std::function<TickReply()>& send);

  /// kFailNode active for `node` at broadcast ordinal `ordinal`
  /// (callers hold mu_).
  bool FailActiveLocked(const std::string& node, int ordinal) const;

  Transport* inner_;
  const FaultSchedule schedule_;
  mutable std::mutex mu_;  // guards ordinals + stats_
  int broadcast_ordinal_ = 0;
  std::map<std::string, int> unicast_ordinal_;  // per target node
  std::map<std::string, int> award_ordinal_;    // per target node
  ScriptedFaultStats stats_;
};

}  // namespace qtrade

#endif  // QTRADE_SIM_FAULT_SCHEDULE_H_
