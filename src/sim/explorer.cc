#include "sim/explorer.h"

#include <cstdio>
#include <memory>
#include <set>
#include <utility>

#include "core/federation.h"
#include "core/qt_optimizer.h"
#include "plan/plan.h"
#include "sql/parser.h"

namespace qtrade {
namespace {

sql::ExprPtr Pred(const std::string& text) {
  auto e = sql::ParseExpression(text);
  if (!e.ok()) return nullptr;
  return *e;
}

/// The paper's telecom schema (same partitioning as the test fixtures):
/// customer partitioned by office, invoiceline by custid range.
std::shared_ptr<FederationSchema> WorldSchema() {
  auto schema = std::make_shared<FederationSchema>();
  TableDef customer{"customer",
                    {{"custid", TypeKind::kInt64},
                     {"custname", TypeKind::kString},
                     {"office", TypeKind::kString}}};
  TableDef invoiceline{"invoiceline",
                       {{"invid", TypeKind::kInt64},
                        {"linenum", TypeKind::kInt64},
                        {"custid", TypeKind::kInt64},
                        {"charge", TypeKind::kDouble}}};
  (void)schema->AddTable(customer, {Pred("office = 'Athens'"),
                                    Pred("office = 'Corfu'"),
                                    Pred("office = 'Myconos'")});
  (void)schema->AddTable(invoiceline,
                         {Pred("custid < 1000"),
                          Pred("custid >= 1000 AND custid < 2000"),
                          Pred("custid >= 2000")});
  return schema;
}

/// Deterministic micro-data, same generator as the test fixtures:
/// customers round-robin over the three regions, custids spread so the
/// invoiceline range partitions are all non-empty.
struct WorldData {
  std::vector<std::vector<Row>> customer_parts;     // [3]
  std::vector<std::vector<Row>> invoiceline_parts;  // [3]

  explicit WorldData(int num_customers = 12, int lines_per_customer = 2) {
    customer_parts.resize(3);
    invoiceline_parts.resize(3);
    const char* offices[] = {"Athens", "Corfu", "Myconos"};
    int64_t invid = 0;
    for (int64_t id = 0; id < num_customers; ++id) {
      int region = static_cast<int>(id % 3);
      int64_t custid = region * 1000 + id;
      customer_parts[region].push_back(
          {Value::Int64(custid),
           Value::String("cust" + std::to_string(custid)),
           Value::String(offices[region])});
      for (int line = 0; line < lines_per_customer; ++line) {
        invoiceline_parts[region].push_back(
            {Value::Int64(invid++), Value::Int64(line), Value::Int64(custid),
             Value::Double(static_cast<double>(custid % 100) * 10 + line)});
      }
    }
  }
};

/// The explorer world: buyer athens hosts NOTHING (every winning offer
/// is a remote delivery, so delivery faults always bite), corfu holds
/// every partition, and the three slice sellers form an overlapping
/// ring — {0,1}, {1,2}, {2,0} — of both tables. Any two sellers can die
/// and all six partitions stay reachable through the survivors.
std::unique_ptr<Federation> BuildWorld() {
  auto fed = std::make_unique<Federation>(WorldSchema());
  fed->AddNode("athens");
  fed->AddNode("corfu");
  fed->AddNode("myconos");
  fed->AddNode("naxos");
  fed->AddNode("paros");
  WorldData data;
  struct Placement {
    const char* node;
    std::vector<int> parts;
  };
  const Placement placements[] = {
      {"corfu", {0, 1, 2}},
      {"myconos", {0, 1}},
      {"naxos", {1, 2}},
      {"paros", {2, 0}},
  };
  for (const Placement& p : placements) {
    for (int part : p.parts) {
      (void)fed->LoadPartition(p.node,
                               "customer#" + std::to_string(part),
                               data.customer_parts[part]);
      (void)fed->LoadPartition(p.node,
                               "invoiceline#" + std::to_string(part),
                               data.invoiceline_parts[part]);
    }
  }
  return fed;
}

std::string RowFingerprint(const Row& row) {
  std::string out;
  for (const auto& v : row) {
    if (v.is_double()) {
      // Re-aggregation (and rerouted plans) may reassociate sums.
      char buffer[32];
      std::snprintf(buffer, sizeof(buffer), "%.6g", v.dbl());
      out += buffer;
    } else {
      out += v.ToString();
    }
    out += '\x01';
  }
  return out;
}

bool SameRows(const RowSet& a, const RowSet& b) {
  if (a.rows.size() != b.rows.size()) return false;
  std::multiset<std::string> ka, kb;
  for (const auto& row : a.rows) ka.insert(RowFingerprint(row));
  for (const auto& row : b.rows) kb.insert(RowFingerprint(row));
  return ka == kb;
}

/// Every single-event schedule of the sweep: each fault kind against
/// each seller, with the timing-sensitive kinds at both of the first two
/// target ordinals.
std::vector<FaultEvent> SingleEvents() {
  std::vector<FaultEvent> singles;
  for (const std::string& node : FaultScheduleExplorer::SellerNodes()) {
    for (int round : {0, 1}) {
      singles.push_back({FaultKind::kDropReply, node, round});
      singles.push_back({FaultKind::kDelayReply, node, round});
      singles.push_back({FaultKind::kFailNode, node, round});
    }
    singles.push_back({FaultKind::kDropTick, node, 0});
    singles.push_back({FaultKind::kDropAward, node, 0});
    singles.push_back({FaultKind::kFailDelivery, node, 0});
  }
  return singles;
}

}  // namespace

FaultScheduleExplorer::FaultScheduleExplorer(ExplorerOptions options)
    : options_(options) {}

std::vector<std::string> FaultScheduleExplorer::SellerNodes() {
  return {"corfu", "myconos", "naxos", "paros"};
}

std::string FaultScheduleExplorer::ScanQuerySql() {
  return "SELECT custname, office FROM customer";
}

std::string FaultScheduleExplorer::JoinQuerySql() {
  return "SELECT c.custname, SUM(l.charge) FROM customer AS c, "
         "invoiceline AS l WHERE c.custid = l.custid GROUP BY c.custname";
}

std::vector<FaultSchedule> FaultScheduleExplorer::SystematicSchedules() const {
  std::vector<FaultSchedule> schedules;
  schedules.push_back({});  // the zero-fault baseline, index 0
  const std::vector<FaultEvent> singles = SingleEvents();
  for (const FaultEvent& event : singles) {
    schedules.push_back({{event}});
  }
  // Every unordered pair of single events. Two fail-type events can hit
  // at most two sellers, and the ring keeps every partition reachable
  // with any two sellers gone, so all pairs must be recoverable.
  for (size_t i = 0; i < singles.size(); ++i) {
    for (size_t j = i + 1; j < singles.size(); ++j) {
      schedules.push_back({{singles[i], singles[j]}});
    }
  }
  return schedules;
}

FaultSchedule FaultScheduleExplorer::RandomSchedule(Rng& rng) const {
  const std::vector<std::string> nodes = SellerNodes();
  FaultSchedule schedule;
  const size_t count = 1 + rng.Index(3);
  std::set<std::string> fail_nodes;
  for (size_t i = 0; i < count; ++i) {
    FaultEvent event;
    const FaultKind kinds[] = {FaultKind::kDropReply, FaultKind::kDelayReply,
                               FaultKind::kDropTick,  FaultKind::kDropAward,
                               FaultKind::kFailNode,  FaultKind::kFailDelivery};
    event.kind = kinds[rng.Index(6)];
    event.node = nodes[rng.Index(nodes.size())];
    event.round = static_cast<int>(rng.Index(2));
    const bool fail_type = event.kind == FaultKind::kFailNode ||
                           event.kind == FaultKind::kFailDelivery;
    if (fail_type) {
      // Keep the dead-seller set within what the ring can absorb.
      if (fail_nodes.size() >= 2 && fail_nodes.count(event.node) == 0) {
        event.kind = FaultKind::kDropReply;
      } else {
        fail_nodes.insert(event.node);
      }
    }
    schedule.events.push_back(std::move(event));
  }
  return schedule;
}

ScheduleOutcome FaultScheduleExplorer::RunInternal(
    const FaultSchedule& schedule, const std::string& sql, bool plain) const {
  ScheduleOutcome out;
  out.schedule = schedule;
  out.sql = sql;
  std::unique_ptr<Federation> fed = BuildWorld();
  ScriptedFaultTransport scripted(fed->transport(), schedule);
  QtOptions opt;
  opt.protocol = options_.protocol;
  opt.seed = 42;
  // Stable RFB ids: two runs of the same schedule are byte-identical,
  // and the zero-fault run matches the plain reference run.
  opt.run_label = "explore";
  opt.offer_timeout_ms = options_.offer_timeout_ms;
  opt.resilience.enabled = false;
  opt.recovery.reaward = false;
  opt.recovery.max_replans = 0;
  if (!plain) {
    opt.transport_override = &scripted;
    if (options_.recovery) {
      opt.resilience.enabled = true;
      opt.resilience.retry.base_backoff_ms = 25;
      // Tight breaker so persistent node failures trip (and probe)
      // within one negotiation's virtual-clock span.
      opt.resilience.breaker.trip_after = 2;
      opt.resilience.breaker.open_ms = 200;
      opt.recovery.reaward = true;
      opt.recovery.max_replans = 2;
    }
    ScriptedFaultTransport* faults = &scripted;
    fed->SetDeliveryInterceptor(
        [faults](const std::string& seller, const std::string&) -> Status {
          if (faults->DeliveryFails(seller)) {
            return Status::NotFound("seller died before delivery: " + seller);
          }
          return Status::OK();
        });
  }
  QueryTradingOptimizer qt(fed.get(), "athens", opt);
  auto result = qt.Optimize(sql);
  if (!result.ok()) {
    out.error = "optimize: " + result.status().ToString();
    return out;
  }
  if (!result->ok()) {
    out.metrics = result->metrics;
    out.error = "optimize: no plan found";
    return out;
  }
  out.optimized = true;
  auto rows = qt.Execute(*result);
  // Snapshot AFTER Execute: recovery metrics (deliveries_failed,
  // reawards, reroutes, replan traffic) land in the result in place.
  out.metrics = result->metrics;
  out.cost = result->cost;
  out.plan_explain = Explain(result->plan);
  for (const Offer& offer : result->winning_offers) {
    out.winning_offer_ids.push_back(offer.offer_id);
  }
  if (!rows.ok()) {
    out.error = "execute: " + rows.status().ToString();
    return out;
  }
  out.executed = true;
  auto reference = fed->ExecuteCentralized(sql);
  if (!reference.ok()) {
    out.error = "centralized reference: " + reference.status().ToString();
    return out;
  }
  out.answer_matches = SameRows(*rows, *reference);
  if (!out.answer_matches) {
    out.error = "answer mismatch vs centralized reference";
  }
  return out;
}

ScheduleOutcome FaultScheduleExplorer::Run(const FaultSchedule& schedule,
                                           const std::string& sql) const {
  return RunInternal(schedule, sql, /*plain=*/false);
}

ScheduleOutcome FaultScheduleExplorer::RunPlain(const std::string& sql) const {
  return RunInternal(FaultSchedule{}, sql, /*plain=*/true);
}

ExplorerReport FaultScheduleExplorer::Explore() const {
  std::vector<std::pair<FaultSchedule, std::string>> work;
  const std::string scan = ScanQuerySql();
  const std::string join = JoinQuerySql();
  for (FaultSchedule& schedule : SystematicSchedules()) {
    work.emplace_back(std::move(schedule), scan);
  }
  if (options_.include_join_query) {
    for (const FaultEvent& event : SingleEvents()) {
      work.emplace_back(FaultSchedule{{event}}, join);
    }
  }
  Rng rng(options_.seed);
  for (int i = 0; i < options_.random_schedules; ++i) {
    work.emplace_back(RandomSchedule(rng), i % 2 == 0 ? scan : join);
  }
  if (options_.max_schedules > 0 &&
      work.size() > static_cast<size_t>(options_.max_schedules)) {
    work.resize(static_cast<size_t>(options_.max_schedules));
  }
  ExplorerReport report;
  for (const auto& [schedule, sql] : work) {
    ScheduleOutcome outcome = Run(schedule, sql);
    ++report.schedules_run;
    report.total_retries += outcome.metrics.retries;
    report.total_breaker_trips += outcome.metrics.breaker_trips;
    report.total_deliveries_failed += outcome.metrics.deliveries_failed;
    report.total_reawards += outcome.metrics.reawards;
    report.total_reroutes += outcome.metrics.reroutes;
    if (!outcome.ok()) {
      ++report.failures;
      if (report.failed.size() < 8) {
        report.failed.push_back(std::move(outcome));
      }
    }
  }
  return report;
}

}  // namespace qtrade
