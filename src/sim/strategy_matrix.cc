#include "sim/strategy_matrix.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <map>
#include <mutex>
#include <utility>

#include "core/federation.h"
#include "core/qt_optimizer.h"
#include "plan/plan.h"
#include "sql/parser.h"

namespace qtrade {
namespace {

sql::ExprPtr Pred(const std::string& text) {
  auto e = sql::ParseExpression(text);
  if (!e.ok()) return nullptr;
  return *e;
}

/// Same telecom micro-schema as the fault-schedule explorer: customer
/// partitioned by office, invoiceline by custid range.
std::shared_ptr<FederationSchema> WorldSchema() {
  auto schema = std::make_shared<FederationSchema>();
  TableDef customer{"customer",
                    {{"custid", TypeKind::kInt64},
                     {"custname", TypeKind::kString},
                     {"office", TypeKind::kString}}};
  TableDef invoiceline{"invoiceline",
                       {{"invid", TypeKind::kInt64},
                        {"linenum", TypeKind::kInt64},
                        {"custid", TypeKind::kInt64},
                        {"charge", TypeKind::kDouble}}};
  (void)schema->AddTable(customer, {Pred("office = 'Athens'"),
                                    Pred("office = 'Corfu'"),
                                    Pred("office = 'Myconos'")});
  (void)schema->AddTable(invoiceline,
                         {Pred("custid < 1000"),
                          Pred("custid >= 1000 AND custid < 2000"),
                          Pred("custid >= 2000")});
  return schema;
}

struct WorldData {
  std::vector<std::vector<Row>> customer_parts;     // [3]
  std::vector<std::vector<Row>> invoiceline_parts;  // [3]

  explicit WorldData(int num_customers = 12, int lines_per_customer = 2) {
    customer_parts.resize(3);
    invoiceline_parts.resize(3);
    const char* offices[] = {"Athens", "Corfu", "Myconos"};
    int64_t invid = 0;
    for (int64_t id = 0; id < num_customers; ++id) {
      int region = static_cast<int>(id % 3);
      int64_t custid = region * 1000 + id;
      customer_parts[region].push_back(
          {Value::Int64(custid),
           Value::String("cust" + std::to_string(custid)),
           Value::String(offices[region])});
      for (int line = 0; line < lines_per_customer; ++line) {
        invoiceline_parts[region].push_back(
            {Value::Int64(invid++), Value::Int64(line), Value::Int64(custid),
             Value::Double(static_cast<double>(custid % 100) * 10 + line)});
      }
    }
  }
};

/// Shared per-run quote log. Sellers append concurrently (the transport
/// may dispatch RFB handlers on worker threads), so the log carries its
/// own mutex; per-seller sequence numbers restore a deterministic total
/// order afterwards.
class QuoteLog {
 public:
  void StartNegotiation(int ordinal) {
    negotiation_.store(ordinal, std::memory_order_relaxed);
  }

  void Record(const std::string& seller, int epoch, const QuoteContext& ctx,
              bool has_context, double quote) {
    std::lock_guard<std::mutex> lock(mu_);
    QuoteEvent event;
    event.seller = seller;
    event.seq = seq_[seller]++;
    event.negotiation = negotiation_.load(std::memory_order_relaxed);
    event.epoch = epoch;
    if (has_context) {
      event.signature = ctx.signature;
      event.shape = ctx.shape;
      event.coverage = ctx.coverage;
    }
    event.true_cost = ctx.true_cost_ms;
    event.quote = quote;
    events_.push_back(std::move(event));
  }

  std::vector<QuoteEvent> Sorted() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<QuoteEvent> out = events_;
    std::sort(out.begin(), out.end(),
              [](const QuoteEvent& a, const QuoteEvent& b) {
                if (a.seller != b.seller) return a.seller < b.seller;
                return a.seq < b.seq;
              });
    return out;
  }

 private:
  mutable std::mutex mu_;
  std::vector<QuoteEvent> events_;
  std::map<std::string, int> seq_;
  std::atomic<int> negotiation_{0};
};

/// Decorator that records every pricing decision of the wrapped
/// strategy into the run's QuoteLog. Always context-hungry, so the
/// engine assembles signatures/coverage for plain strategies too.
class RecordingStrategy : public SellerStrategy {
 public:
  RecordingStrategy(std::unique_ptr<SellerStrategy> inner, QuoteLog* log,
                    std::string seller)
      : inner_(std::move(inner)), log_(log), seller_(std::move(seller)) {}

  bool wants_context() const override { return true; }

  double Quote(double true_cost_ms) override {
    // Context assembly failed (e.g. a view offer that would not bind):
    // record the decision without lattice coordinates.
    QuoteContext ctx;
    ctx.true_cost_ms = true_cost_ms;
    double quote = inner_->Quote(true_cost_ms);
    log_->Record(seller_, epoch_, ctx, /*has_context=*/false, quote);
    return quote;
  }

  double QuoteWithContext(const QuoteContext& ctx) override {
    double quote = inner_->wants_context() ? inner_->QuoteWithContext(ctx)
                                           : inner_->Quote(ctx.true_cost_ms);
    log_->Record(seller_, epoch_, ctx, /*has_context=*/true, quote);
    return quote;
  }

  void OnTradeOutcome(const TradeOutcome& outcome) override {
    inner_->OnTradeOutcome(outcome);
    ++epoch_;
  }

  double ReservationValue(double true_cost_ms) override {
    return inner_->ReservationValue(true_cost_ms);
  }

  StrategyStats Stats() const override { return inner_->Stats(); }
  std::string name() const override { return inner_->name(); }

 private:
  std::unique_ptr<SellerStrategy> inner_;
  QuoteLog* log_;
  std::string seller_;
  int epoch_ = 0;
};

/// The market world: same placement ring as the fault explorer (athens
/// buys, corfu holds everything, three overlapping 2-partition
/// sellers), every seller running a fresh instance of the cell's
/// strategy behind a recording decorator.
std::unique_ptr<Federation> BuildMarketWorld(
    const std::function<std::unique_ptr<SellerStrategy>()>& make,
    QuoteLog* log) {
  auto fed = std::make_unique<Federation>(WorldSchema());
  fed->AddNode("athens");
  for (const char* node : {"corfu", "myconos", "naxos", "paros"}) {
    fed->AddNode(node, std::make_unique<RecordingStrategy>(make(), log, node));
  }
  WorldData data;
  struct Placement {
    const char* node;
    std::vector<int> parts;
  };
  const Placement placements[] = {
      {"corfu", {0, 1, 2}},
      {"myconos", {0, 1}},
      {"naxos", {1, 2}},
      {"paros", {2, 0}},
  };
  for (const Placement& p : placements) {
    for (int part : p.parts) {
      (void)fed->LoadPartition(p.node, "customer#" + std::to_string(part),
                               data.customer_parts[part]);
      (void)fed->LoadPartition(p.node, "invoiceline#" + std::to_string(part),
                               data.invoiceline_parts[part]);
    }
  }
  return fed;
}

std::string Fmt(double v) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  return buffer;
}

std::string CommodityKey(const QuoteEvent& e) {
  std::string key = e.seller;
  key += '|';
  key += e.signature;
  key += '|';
  for (const auto& c : e.coverage) {
    key += c;
    key += ',';
  }
  return key;
}

}  // namespace

StrategyMatrixExplorer::StrategyMatrixExplorer(StrategyMatrixOptions options)
    : options_(options) {}

std::vector<SellerKind> StrategyMatrixExplorer::SellerKinds() {
  std::vector<SellerKind> kinds;
  kinds.push_back({"truthful", false,
                   [] { return std::make_unique<TruthfulStrategy>(); }});
  kinds.push_back({"markup", false,
                   [] { return std::make_unique<AdaptiveMarkupStrategy>(); }});
  kinds.push_back({"containment", true, [] {
                     return std::make_unique<ContainmentAwareStrategy>();
                   }});
  kinds.push_back({"history", false, [] {
                     return std::make_unique<HistoryAdaptiveStrategy>();
                   }});
  return kinds;
}

std::vector<BuyerKind> StrategyMatrixExplorer::BuyerKinds() {
  return {
      {"default", 1.25, 0.85},
      {"eager", 1.5, 0.95},
      {"hard", 1.1, 0.7},
      {"patient", 1.25, 0.75},
  };
}

std::vector<std::string> StrategyMatrixExplorer::WorkloadSql() {
  return {
      "SELECT custname, office FROM customer",
      "SELECT custname, office FROM customer WHERE office = 'Corfu'",
      "SELECT c.custname, SUM(l.charge) FROM customer AS c, invoiceline AS l "
      "WHERE c.custid = l.custid GROUP BY c.custname",
      "SELECT custname, office FROM customer "
      "WHERE office = 'Corfu' AND custid < 1400",
  };
}

bool StrategyMatrixExplorer::Covers(const QuoteEvent& super,
                                    const QuoteEvent& sub) {
  if (super.signature.empty() || sub.signature.empty()) return false;
  return ShapeContains(super.shape, sub.shape) &&
         std::includes(super.coverage.begin(), super.coverage.end(),
                       sub.coverage.begin(), sub.coverage.end());
}

std::vector<std::string> StrategyMatrixExplorer::CheckArbitrage(
    const std::vector<QuoteEvent>& events, bool whole_history, double rel_eps,
    double abs_eps, int* pairs) {
  std::vector<std::string> violations;
  int compared = 0;
  for (size_t i = 0; i < events.size(); ++i) {
    for (size_t j = 0; j < events.size(); ++j) {
      if (i == j) continue;
      const QuoteEvent& super = events[i];
      const QuoteEvent& sub = events[j];
      if (super.seller != sub.seller) continue;
      if (!whole_history && super.epoch != sub.epoch) continue;
      if (CommodityKey(super) == CommodityKey(sub)) continue;
      if (!Covers(super, sub)) continue;
      ++compared;
      const double bound =
          super.quote + rel_eps * std::fabs(super.quote) + abs_eps;
      if (sub.quote > bound) {
        violations.push_back(
            "arbitrage: " + sub.seller + " quoted contained commodity " +
            Fmt(sub.quote) + " above containing commodity " +
            Fmt(super.quote) + " (negotiations " +
            std::to_string(super.negotiation) + " vs " +
            std::to_string(sub.negotiation) + ", sub sig " + sub.signature +
            ")");
        if (violations.size() >= 8) {
          if (pairs != nullptr) *pairs = compared;
          return violations;
        }
      }
    }
  }
  if (pairs != nullptr) *pairs = compared;
  return violations;
}

bool StrategyMatrixExplorer::CheckConvergence(
    const std::vector<QuoteEvent>& events, double tol, int live_after,
    int* rounds_to_converge) {
  std::map<std::string, std::vector<const QuoteEvent*>> by_key;
  for (const QuoteEvent& e : events) by_key[CommodityKey(e)].push_back(&e);
  // Events arrive sorted by (seller, seq); per key that is quote order.
  bool converged = true;
  int settle = 0;
  for (auto& [key, quotes] : by_key) {
    if (quotes.size() < 2) continue;
    // A commodity the market stopped requesting before `live_after` has
    // no further quotes to converge with; only still-traded prices are
    // held to the settled test.
    if (quotes.back()->negotiation < live_after) continue;
    const double final_quote = quotes.back()->quote;
    const double scale = std::max(std::fabs(final_quote), 1e-12);
    auto settled = [&](const QuoteEvent* e) {
      return std::fabs(e->quote - final_quote) <= tol * scale;
    };
    // A commodity converged when its last two quotes agree: the price
    // stopped moving before the budget ran out.
    if (!settled(quotes[quotes.size() - 2])) {
      converged = false;
    }
    // First index from which everything stays within tolerance.
    size_t first = quotes.size() - 1;
    while (first > 0 && settled(quotes[first - 1])) --first;
    settle = std::max(settle, quotes[first]->negotiation);
  }
  if (rounds_to_converge != nullptr) *rounds_to_converge = settle;
  return converged;
}

StrategyMatrixExplorer::CellRun StrategyMatrixExplorer::RunOnce(
    const SellerKind& seller, const BuyerKind& buyer) const {
  CellRun run;
  QuoteLog log;
  std::unique_ptr<Federation> fed = BuildMarketWorld(seller.make, &log);
  const std::vector<std::string> workload = WorkloadSql();
  const int total =
      options_.rounds * static_cast<int>(workload.size());
  for (int i = 0; i < total; ++i) {
    log.StartNegotiation(i);
    QtOptions opt;
    // Auction and bargaining alternate so both nested-protocol paths
    // (undercut ticks, counter-offers) see every strategy.
    opt.protocol = i % 2 == 0 ? NegotiationProtocol::kAuction
                              : NegotiationProtocol::kBargaining;
    opt.seed = options_.seed;
    // Distinct, stable RFB ids per negotiation: sellers mint fresh
    // offer records each time, and a replay reproduces every id.
    opt.run_label = "mx" + std::to_string(i);
    opt.offer_timeout_ms = 5000;
    opt.buyer_strategy = [&buyer] {
      return std::make_unique<DefaultBuyerStrategy>(buyer.slack,
                                                    buyer.bargain_discount);
    };
    QueryTradingOptimizer qt(fed.get(), "athens", opt);
    auto result = qt.Optimize(workload[i % workload.size()]);
    if (!result.ok()) {
      run.error = "negotiation " + std::to_string(i) +
                  " optimize: " + result.status().ToString();
      return run;
    }
    if (!result->ok()) {
      run.error =
          "negotiation " + std::to_string(i) + ": no plan found";
      return run;
    }
    run.costs.push_back(result->cost);
    run.paid += TotalRemoteCost(result->plan);
    for (const Offer& offer : result->winning_offers) {
      FederationNode* node = fed->node(offer.seller);
      if (node == nullptr) continue;
      auto true_cost = node->seller->TrueCost(offer.offer_id);
      if (true_cost.ok()) run.honest += *true_cost;
    }
  }
  run.events = log.Sorted();
  // Digest: every pricing decision plus every negotiation outcome, in a
  // deterministic order. Two runs of the same cell must match byte for
  // byte.
  for (const QuoteEvent& e : run.events) {
    run.digest += e.seller + "#" + std::to_string(e.seq) + " n" +
                  std::to_string(e.negotiation) + " e" +
                  std::to_string(e.epoch) + " " + e.signature + " [";
    for (const auto& c : e.coverage) {
      run.digest += c;
      run.digest += ",";
    }
    run.digest += "] " + Fmt(e.true_cost) + " -> " + Fmt(e.quote) + "\n";
  }
  for (size_t i = 0; i < run.costs.size(); ++i) {
    run.digest += "neg" + std::to_string(i) + " cost " + Fmt(run.costs[i]) +
                  "\n";
  }
  run.digest += "paid " + Fmt(run.paid) + " honest " + Fmt(run.honest) + "\n";
  return run;
}

CellOutcome StrategyMatrixExplorer::RunCell(const SellerKind& seller,
                                            const BuyerKind& buyer,
                                            double baseline_cost) const {
  CellOutcome out;
  out.seller_kind = seller.name;
  out.buyer_kind = buyer.name;
  out.baseline_cost = baseline_cost;
  CellRun run = RunOnce(seller, buyer);
  if (!run.error.empty()) {
    out.violations.push_back(run.error);
    return out;
  }
  out.negotiations = static_cast<int>(run.costs.size());
  for (double cost : run.costs) out.total_cost += cost;
  out.paid = run.paid;
  out.honest = run.honest;
  out.revenue = run.paid - run.honest;
  out.digest = run.digest;

  if (options_.check_replay) {
    CellRun replay = RunOnce(seller, buyer);
    out.replay_identical =
        replay.error.empty() && replay.digest == run.digest;
    if (!out.replay_identical) {
      out.violations.push_back(
          "replay: second run diverged (" +
          (replay.error.empty() ? "digest mismatch" : replay.error) + ")");
    }
  }

  // Arbitrage. Price-book strategies are exactly ordered by
  // construction; plain per-epoch checks get an absolute epsilon
  // covering the cost model's per-predicate CPU term (a contained
  // query carries more predicates, which can legitimately raise its
  // honest cost by rows * cpu_predicate_ms — and markup strategies
  // scale that honest gap by up to 1 + max_margin).
  const double rel_eps = seller.whole_history_arbitrage ? 1e-9 : 1e-6;
  const double abs_eps = seller.whole_history_arbitrage ? 1e-9 : 0.05;
  std::vector<std::string> arb =
      CheckArbitrage(run.events, seller.whole_history_arbitrage, rel_eps,
                     abs_eps, &out.containment_pairs);
  out.violations.insert(out.violations.end(), arb.begin(), arb.end());

  // Live = quoted in the final workload round.
  const int live_after =
      (options_.rounds - 1) * static_cast<int>(WorkloadSql().size());
  if (!CheckConvergence(run.events, options_.convergence_tol, live_after,
                        &out.rounds_to_converge)) {
    out.violations.push_back(
        "convergence: quotes still moving more than " +
        Fmt(options_.convergence_tol) + " (relative) at the round budget");
  }

  if (baseline_cost > 0 &&
      out.total_cost > options_.cost_bound_factor * baseline_cost) {
    out.violations.push_back(
        "cost bound: buyer paid " + Fmt(out.total_cost) + " > " +
        Fmt(options_.cost_bound_factor) + " x truthful baseline " +
        Fmt(baseline_cost));
  }
  return out;
}

MatrixReport StrategyMatrixExplorer::Explore() const {
  MatrixReport report;
  const std::vector<SellerKind> sellers = SellerKinds();
  const std::vector<BuyerKind> buyers = BuyerKinds();
  // Truthful baselines first: every other cell in a buyer's row is
  // bounded against that buyer's all-truthful market.
  std::map<std::string, double> baseline;
  for (const BuyerKind& buyer : buyers) {
    CellOutcome cell = RunCell(sellers[0], buyer, /*baseline_cost=*/-1);
    baseline[buyer.name] = cell.total_cost;
    ++report.cells_run;
    if (!cell.ok()) ++report.cells_violating;
    report.cells.push_back(std::move(cell));
  }
  for (size_t si = 1; si < sellers.size(); ++si) {
    for (const BuyerKind& buyer : buyers) {
      CellOutcome cell = RunCell(sellers[si], buyer, baseline[buyer.name]);
      ++report.cells_run;
      if (!cell.ok()) ++report.cells_violating;
      report.cells.push_back(std::move(cell));
    }
  }
  return report;
}

}  // namespace qtrade
