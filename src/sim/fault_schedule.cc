#include "sim/fault_schedule.h"

#include <utility>

namespace qtrade {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDropReply:
      return "drop_reply";
    case FaultKind::kDelayReply:
      return "delay_reply";
    case FaultKind::kDropTick:
      return "drop_tick";
    case FaultKind::kDropAward:
      return "drop_award";
    case FaultKind::kFailNode:
      return "fail_node";
    case FaultKind::kFailDelivery:
      return "fail_delivery";
  }
  return "unknown";
}

std::string FaultEvent::Describe() const {
  std::string out = FaultKindName(kind);
  out += "(" + node;
  if (kind != FaultKind::kFailDelivery) {
    out += "@" + std::to_string(round);
  }
  out += ")";
  return out;
}

std::string FaultSchedule::Describe() const {
  if (events.empty()) return "(no faults)";
  std::string out;
  for (const auto& event : events) {
    if (!out.empty()) out += " + ";
    out += event.Describe();
  }
  return out;
}

ScriptedFaultTransport::ScriptedFaultTransport(Transport* inner,
                                               FaultSchedule schedule)
    : inner_(inner), schedule_(std::move(schedule)) {}

void ScriptedFaultTransport::Register(NodeEndpoint* endpoint) {
  inner_->Register(endpoint);
}

NodeEndpoint* ScriptedFaultTransport::endpoint(const std::string& name) const {
  return inner_->endpoint(name);
}

std::vector<std::string> ScriptedFaultTransport::NodeNames() const {
  return inner_->NodeNames();
}

bool ScriptedFaultTransport::FailActiveLocked(const std::string& node,
                                              int ordinal) const {
  for (const auto& event : schedule_.events) {
    if (event.kind == FaultKind::kFailNode && event.node == node &&
        event.round <= ordinal) {
      return true;
    }
  }
  return false;
}

std::vector<OfferReply> ScriptedFaultTransport::BroadcastRfb(
    const std::string& from, const Rfb& rfb,
    const std::vector<std::string>& to, const char* rfb_kind,
    const char* offer_kind) {
  int ordinal;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ordinal = broadcast_ordinal_++;
  }
  // Dead nodes never see the RFB; the buyer observes a lost reply.
  std::vector<std::string> alive;
  std::vector<OfferReply> dead;
  alive.reserve(to.size());
  for (const auto& target : to) {
    bool down;
    {
      std::lock_guard<std::mutex> lock(mu_);
      down = target != from && FailActiveLocked(target, ordinal);
    }
    if (down) {
      OfferReply reply;
      reply.seller = target;
      reply.dropped = true;
      dead.push_back(std::move(reply));
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.node_failures;
    } else {
      alive.push_back(target);
    }
  }
  std::vector<OfferReply> out =
      inner_->BroadcastRfb(from, rfb, alive, rfb_kind, offer_kind);
  for (auto& reply : out) {
    if (reply.seller == from || reply.dropped || reply.duplicated) continue;
    for (const auto& event : schedule_.events) {
      if (event.node != reply.seller || event.round != ordinal) continue;
      if (event.kind == FaultKind::kDropReply) {
        reply.dropped_offers = static_cast<int64_t>(reply.offers.size());
        reply.offers.clear();
        reply.dropped = true;
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.replies_dropped;
      } else if (event.kind == FaultKind::kDelayReply) {
        reply.arrival_ms += event.delay_ms;
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.replies_delayed;
      }
    }
  }
  out.insert(out.end(), std::make_move_iterator(dead.begin()),
             std::make_move_iterator(dead.end()));
  return out;
}

TickReply ScriptedFaultTransport::Unicast(
    const std::string& from, const std::string& to,
    const std::function<TickReply()>& send) {
  if (to == from) return send();  // loopback never crosses the network
  bool down;
  bool drop;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // kFailNode is checked against the last started broadcast: the node
    // went down during (or before) that fan-out.
    down = FailActiveLocked(to, broadcast_ordinal_ - 1);
    int ordinal = unicast_ordinal_[to]++;
    drop = false;
    for (const auto& event : schedule_.events) {
      if (event.kind == FaultKind::kDropTick && event.node == to &&
          event.round == ordinal) {
        drop = true;
      }
    }
    if (down) ++stats_.node_failures;
  }
  if (down) {
    TickReply reply;
    reply.dropped = true;
    return reply;
  }
  TickReply reply = send();
  if (drop) {
    // The seller computed its answer; only the reply is lost.
    reply.updated.reset();
    reply.dropped = true;
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.ticks_dropped;
  }
  return reply;
}

TickReply ScriptedFaultTransport::SendAuctionTick(const std::string& from,
                                                  const std::string& to,
                                                  const AuctionTick& tick) {
  return Unicast(from, to,
                 [&] { return inner_->SendAuctionTick(from, to, tick); });
}

TickReply ScriptedFaultTransport::SendCounterOffer(
    const std::string& from, const std::string& to,
    const CounterOffer& counter) {
  return Unicast(from, to,
                 [&] { return inner_->SendCounterOffer(from, to, counter); });
}

double ScriptedFaultTransport::SendAwards(const std::string& from,
                                          const std::string& to,
                                          const AwardBatch& batch) {
  if (to != from) {
    std::lock_guard<std::mutex> lock(mu_);
    if (FailActiveLocked(to, broadcast_ordinal_ - 1)) {
      ++stats_.node_failures;
      return 0;
    }
    int ordinal = award_ordinal_[to]++;
    for (const auto& event : schedule_.events) {
      if (event.kind == FaultKind::kDropAward && event.node == to &&
          event.round == ordinal) {
        ++stats_.awards_dropped;
        return 0;
      }
    }
  }
  return inner_->SendAwards(from, to, batch);
}

void ScriptedFaultTransport::AdvanceRound(double ms) {
  inner_->AdvanceRound(ms);
}

SimNetwork* ScriptedFaultTransport::network() { return inner_->network(); }

void ScriptedFaultTransport::SetObservability(obs::Tracer* tracer,
                                              obs::MetricsRegistry* metrics) {
  inner_->SetObservability(tracer, metrics);
}

bool ScriptedFaultTransport::NodeDown(const std::string& node) const {
  std::lock_guard<std::mutex> lock(mu_);
  return FailActiveLocked(node, broadcast_ordinal_ - 1);
}

bool ScriptedFaultTransport::DeliveryFails(const std::string& node) const {
  for (const auto& event : schedule_.events) {
    if (event.kind == FaultKind::kFailDelivery && event.node == node) {
      return true;
    }
  }
  return NodeDown(node);
}

ScriptedFaultStats ScriptedFaultTransport::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace qtrade
