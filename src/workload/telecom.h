// The paper's §1 telecom customer-care micro-world as a ready-made
// federation: customer(custid, custname, office) partitioned by office,
// invoiceline(invid, linenum, custid, charge), one node per regional
// office. Used by examples, tests and EXP-10.
#ifndef QTRADE_WORKLOAD_TELECOM_H_
#define QTRADE_WORKLOAD_TELECOM_H_

#include <memory>
#include <string>
#include <vector>

#include "core/federation.h"
#include "util/status.h"

namespace qtrade {

struct TelecomParams {
  /// Regional offices (= customer partitions = nodes). 2..8.
  int num_offices = 3;
  int customers_per_office = 100;
  int lines_per_customer = 3;
  /// Where invoice lines live: "central" stores the whole table on the
  /// last office's node; "replicated" gives every node a full copy.
  bool replicate_invoicelines = false;
  /// Materialize the paper's finer-grained view
  /// (office, custid) -> SUM(charge), COUNT(*) on the last office.
  bool with_view = false;
  uint64_t seed = 4242;
};

struct TelecomWorld {
  std::unique_ptr<Federation> federation;
  std::vector<std::string> node_names;  // "office_<Name>"
  std::vector<std::string> office_names;

  /// The manager's per-office revenue report (paper §3.5 scenario).
  static std::string RevenueReportSql();
  /// The §1 motivating query (total island charges).
  std::string MotivatingQuerySql() const;
};

/// Office name for index i ("Athens", "Corfu", "Myconos", ...).
std::string TelecomOfficeName(int i);

Result<TelecomWorld> BuildTelecomWorld(const TelecomParams& params = {});

}  // namespace qtrade

#endif  // QTRADE_WORKLOAD_TELECOM_H_
