#include "workload/workload.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "sql/parser.h"

namespace qtrade {

namespace {

int64_t TableRows(const WorkloadParams& params, int table_index) {
  // In planning-only mode the scale inflates the whole key domain, so
  // keys stay unique and partition predicates remain consistent with the
  // statistics.
  int64_t scale = params.with_data ? 1 : std::max<int64_t>(1, params.stats_row_scale);
  return params.rows_per_table * (1 + table_index % 3) * scale;
}

std::string TableName(int i) { return "t" + std::to_string(i); }

/// Range partition predicates over pk; first/last are open-ended so the
/// partitioning is complete over the whole integer domain.
std::vector<sql::ExprPtr> PartitionPredicates(int64_t rows, int partitions) {
  std::vector<sql::ExprPtr> preds;
  if (partitions <= 1) return preds;  // single whole-table partition
  int64_t step = std::max<int64_t>(1, rows / partitions);
  for (int p = 0; p < partitions; ++p) {
    int64_t lo = p * step;
    int64_t hi = (p + 1) * step;
    std::ostringstream text;
    if (p == 0) {
      text << "pk < " << hi;
    } else if (p == partitions - 1) {
      text << "pk >= " << lo;
    } else {
      text << "pk >= " << lo << " AND pk < " << hi;
    }
    auto parsed = sql::ParseExpression(text.str());
    preds.push_back(parsed.ok() ? *parsed : nullptr);
  }
  return preds;
}

/// Synthetic statistics for a partition in planning-only mode.
TableStats SyntheticStats(const WorkloadParams& params, int table_index,
                          int64_t lo, int64_t hi, int64_t next_rows) {
  TableStats stats;
  // TableRows() already folded stats_row_scale into the key domain, so
  // [lo, hi) is the scaled range; keys are unique within it.
  int64_t rows = std::max<int64_t>(1, hi - lo);
  stats.row_count = rows;
  (void)params;
  stats.avg_row_bytes = 48;
  ColumnStats pk;
  pk.ndv = std::max<int64_t>(1, hi - lo);
  pk.min = Value::Int64(lo);
  pk.max = Value::Int64(hi - 1);
  stats.columns["pk"] = pk;
  ColumnStats fk;
  fk.ndv = std::min<int64_t>(rows, next_rows);
  fk.min = Value::Int64(0);
  fk.max = Value::Int64(next_rows - 1);
  stats.columns["fk"] = fk;
  ColumnStats val;
  val.ndv = std::min<int64_t>(rows, 1000);
  val.min = Value::Int64(0);
  val.max = Value::Int64(999);
  stats.columns["val"] = val;
  ColumnStats cat;
  cat.ndv = 8;
  cat.min = Value::String("c0");
  cat.max = Value::String("c7");
  for (int c = 0; c < 8; ++c) {
    cat.mcv.emplace_back(Value::String("c" + std::to_string(c)), rows / 8);
  }
  stats.columns["cat"] = cat;
  (void)table_index;
  return stats;
}

}  // namespace

std::string GeneratedFederation::NodeName(int i) {
  char buffer[16];
  std::snprintf(buffer, sizeof(buffer), "node%02d", i);
  return buffer;
}

Result<GeneratedFederation> BuildFederation(const WorkloadParams& params) {
  if (params.num_nodes < 1 || params.num_tables < 1 ||
      params.partitions_per_table < 1 || params.replication < 1) {
    return Status::InvalidArgument("degenerate workload parameters");
  }
  Rng rng(params.seed);

  auto schema = std::make_shared<FederationSchema>();
  for (int i = 0; i < params.num_tables; ++i) {
    TableDef table;
    table.name = TableName(i);
    table.columns = {{"pk", TypeKind::kInt64},
                     {"fk", TypeKind::kInt64},
                     {"val", TypeKind::kInt64},
                     {"cat", TypeKind::kString}};
    QTRADE_RETURN_IF_ERROR(schema->AddTable(
        table,
        PartitionPredicates(TableRows(params, i),
                            params.partitions_per_table)));
  }

  GeneratedFederation out;
  out.params = params;
  out.federation = std::make_unique<Federation>(schema);
  for (int i = 0; i < params.num_nodes; ++i) {
    out.node_names.push_back(GeneratedFederation::NodeName(i));
    out.federation->AddNode(out.node_names.back());
  }

  int replication = std::min(params.replication, params.num_nodes);
  for (int t = 0; t < params.num_tables; ++t) {
    int64_t rows = TableRows(params, t);
    int64_t next_rows =
        TableRows(params, (t + 1) % params.num_tables);
    const TablePartitioning* partitioning =
        schema->FindPartitioning(TableName(t));
    int64_t step =
        std::max<int64_t>(1, rows / params.partitions_per_table);
    for (size_t p = 0; p < partitioning->partitions.size(); ++p) {
      const PartitionDef& part = partitioning->partitions[p];
      int64_t lo = static_cast<int64_t>(p) * step;
      int64_t hi = (p + 1 == partitioning->partitions.size())
                       ? rows
                       : static_cast<int64_t>(p + 1) * step;

      // Pick hosting nodes: a zipf-ranked primary plus random others.
      std::set<size_t> hosts;
      hosts.insert(static_cast<size_t>(
          rng.Zipf(params.num_nodes, params.placement_skew) - 1));
      while (static_cast<int>(hosts.size()) < replication) {
        hosts.insert(rng.Index(out.node_names.size()));
      }

      if (params.with_data) {
        std::vector<Row> rows_data;
        for (int64_t pk = lo; pk < hi; ++pk) {
          rows_data.push_back(
              {Value::Int64(pk), Value::Int64(rng.Uniform(0, next_rows - 1)),
               Value::Int64(rng.Uniform(0, 999)),
               Value::String("c" + std::to_string(pk % 8))});
        }
        for (size_t host : hosts) {
          QTRADE_RETURN_IF_ERROR(out.federation->LoadPartition(
              out.node_names[host], part.id, rows_data));
        }
      } else {
        TableStats stats = SyntheticStats(params, t, lo, hi, next_rows);
        for (size_t host : hosts) {
          QTRADE_RETURN_IF_ERROR(out.federation->RegisterPartitionStats(
              out.node_names[host], part.id, stats));
        }
      }
    }
  }
  return out;
}

std::string ChainQuerySql(int start, int num_joins, bool aggregate,
                          bool selection) {
  std::ostringstream sql;
  if (aggregate) {
    sql << "SELECT a0.cat, SUM(a0.val) AS total, COUNT(*) AS n ";
  } else {
    sql << "SELECT a0.pk, a" << num_joins << ".val ";
  }
  sql << "FROM ";
  for (int j = 0; j <= num_joins; ++j) {
    if (j > 0) sql << ", ";
    sql << TableName(start + j) << " a" << j;
  }
  bool first = true;
  for (int j = 0; j < num_joins; ++j) {
    sql << (first ? " WHERE " : " AND ");
    first = false;
    sql << "a" << j << ".fk = a" << (j + 1) << ".pk";
  }
  if (selection) {
    sql << (first ? " WHERE " : " AND ");
    first = false;
    sql << "a0.val < 500";
  }
  if (aggregate) sql << " GROUP BY a0.cat";
  return sql.str();
}

std::string StarQuerySql(int center, int num_joins, bool aggregate) {
  std::ostringstream sql;
  if (aggregate) {
    sql << "SELECT a0.cat, COUNT(*) AS n ";
  } else {
    sql << "SELECT a0.pk ";
  }
  sql << "FROM " << TableName(center) << " a0";
  for (int j = 1; j <= num_joins; ++j) {
    sql << ", " << TableName(center + j) << " a" << j;
  }
  bool first = true;
  for (int j = 1; j <= num_joins; ++j) {
    sql << (first ? " WHERE " : " AND ");
    first = false;
    sql << "a0.fk = a" << j << ".pk";
  }
  if (aggregate) sql << " GROUP BY a0.cat";
  return sql.str();
}

}  // namespace qtrade
