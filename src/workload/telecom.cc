#include "workload/telecom.h"

#include "sql/parser.h"
#include "util/random.h"

namespace qtrade {

std::string TelecomOfficeName(int i) {
  static const char* kNames[] = {"Athens", "Corfu",  "Myconos", "Rhodes",
                                 "Chania", "Patras", "Volos",   "Kavala"};
  return kNames[i % 8];
}

std::string TelecomWorld::RevenueReportSql() {
  return "SELECT c.office, SUM(i.charge) AS revenue FROM customer c, "
         "invoiceline i WHERE c.custid = i.custid GROUP BY c.office "
         "ORDER BY revenue DESC";
}

std::string TelecomWorld::MotivatingQuerySql() const {
  // The paper asks for Corfu + Myconos; fall back to the last two
  // offices when the world is smaller.
  std::string a = office_names.size() > 1
                      ? office_names[1]
                      : office_names.front();
  std::string b = office_names.back();
  return "SELECT SUM(charge) FROM customer c, invoiceline i "
         "WHERE c.custid = i.custid AND (c.office = '" +
         a + "' OR c.office = '" + b + "')";
}

Result<TelecomWorld> BuildTelecomWorld(const TelecomParams& params) {
  if (params.num_offices < 2 || params.num_offices > 8) {
    return Status::InvalidArgument("num_offices must be in [2, 8]");
  }
  auto schema = std::make_shared<FederationSchema>();
  std::vector<sql::ExprPtr> office_parts;
  TelecomWorld world;
  for (int i = 0; i < params.num_offices; ++i) {
    world.office_names.push_back(TelecomOfficeName(i));
    QTRADE_ASSIGN_OR_RETURN(
        sql::ExprPtr pred,
        sql::ParseExpression("office = '" + world.office_names.back() +
                             "'"));
    office_parts.push_back(std::move(pred));
  }
  QTRADE_RETURN_IF_ERROR(
      schema->AddTable({"customer",
                        {{"custid", TypeKind::kInt64},
                         {"custname", TypeKind::kString},
                         {"office", TypeKind::kString}}},
                       office_parts));
  QTRADE_RETURN_IF_ERROR(
      schema->AddTable({"invoiceline",
                        {{"invid", TypeKind::kInt64},
                         {"linenum", TypeKind::kInt64},
                         {"custid", TypeKind::kInt64},
                         {"charge", TypeKind::kDouble}}}));

  world.federation = std::make_unique<Federation>(schema);
  for (int i = 0; i < params.num_offices; ++i) {
    world.node_names.push_back("office_" + world.office_names[i]);
    world.federation->AddNode(world.node_names.back());
  }

  Rng rng(params.seed);
  std::vector<Row> all_lines;
  for (int region = 0; region < params.num_offices; ++region) {
    std::vector<Row> customers;
    for (int64_t k = 0; k < params.customers_per_office; ++k) {
      int64_t custid = region * 100000 + k;
      customers.push_back(
          {Value::Int64(custid),
           Value::String("cust" + std::to_string(custid)),
           Value::String(world.office_names[region])});
      for (int line = 0; line < params.lines_per_customer; ++line) {
        all_lines.push_back({Value::Int64(custid * 10 + line),
                             Value::Int64(line), Value::Int64(custid),
                             Value::Double(rng.UniformReal(0.5, 120.0))});
      }
    }
    QTRADE_RETURN_IF_ERROR(world.federation->LoadPartition(
        world.node_names[region], "customer#" + std::to_string(region),
        std::move(customers)));
  }
  if (params.replicate_invoicelines) {
    for (const auto& node : world.node_names) {
      QTRADE_RETURN_IF_ERROR(
          world.federation->LoadPartition(node, "invoiceline#0", all_lines));
    }
  } else {
    QTRADE_RETURN_IF_ERROR(world.federation->LoadPartition(
        world.node_names.back(), "invoiceline#0", std::move(all_lines)));
  }
  if (params.with_view) {
    QTRADE_RETURN_IF_ERROR(world.federation->CreateView(
        world.node_names.back(), "v_office_cust",
        "SELECT c.office AS office, i.custid AS custid, "
        "SUM(i.charge) AS sum_charge, COUNT(*) AS cnt "
        "FROM customer c, invoiceline i WHERE c.custid = i.custid "
        "GROUP BY c.office, i.custid"));
  }
  return world;
}

}  // namespace qtrade
