// Synthetic-federation and query generators driving the experiments.
//
// Schema shape: a chain of tables t0..t{k-1}; each has an integer primary
// key `pk` (range-partitioned), a foreign key `fk` into the next table's
// pk domain, a numeric attribute `val` in [0, 1000) and a categorical
// attribute `cat` with 8 values. This produces the classic chain/star
// join workloads of the distributed-optimization literature while keeping
// every partition predicate machine-checkable.
#ifndef QTRADE_WORKLOAD_WORKLOAD_H_
#define QTRADE_WORKLOAD_WORKLOAD_H_

#include <memory>
#include <string>
#include <vector>

#include "core/federation.h"
#include "util/random.h"
#include "util/status.h"

namespace qtrade {

struct WorkloadParams {
  int num_nodes = 16;
  int num_tables = 6;
  int partitions_per_table = 3;
  /// Replicas per partition (capped at num_nodes).
  int replication = 2;
  /// Rows of table i = rows_per_table * (1 + i % 3).
  int64_t rows_per_table = 1200;
  /// Zipf skew of placement: >0 concentrates partitions on few nodes.
  double placement_skew = 0.0;
  /// When false, only statistics are registered (planning-scale runs);
  /// row counts are additionally multiplied by stats_row_scale.
  bool with_data = true;
  int64_t stats_row_scale = 1;
  uint64_t seed = 42;
};

/// A generated federation plus bookkeeping the experiments report.
struct GeneratedFederation {
  std::unique_ptr<Federation> federation;
  WorkloadParams params;
  std::vector<std::string> node_names;

  /// Name of the i-th node ("node00", ...).
  static std::string NodeName(int i);
};

/// Builds the federation (schema, nodes, placement, data or statistics).
/// All nodes use TruthfulStrategy; callers may rebuild with custom
/// strategies via params + MakeStrategy-style helpers in the benches.
Result<GeneratedFederation> BuildFederation(const WorkloadParams& params);

/// Chain query over tables [start, start+num_joins]:
///   SELECT <outputs> FROM t<start> a0, ... WHERE a0.fk = a1.pk AND ...
/// With `aggregate`, outputs become SUM(a0.val) grouped by a0.cat;
/// `selection` adds `a0.val < 500`.
std::string ChainQuerySql(int start, int num_joins, bool aggregate,
                          bool selection);

/// Star query: t<center> joined to `num_joins` following tables, each on
/// the center's fk (a synthetic star; useful for wide fan-outs).
std::string StarQuerySql(int center, int num_joins, bool aggregate);

}  // namespace qtrade

#endif  // QTRADE_WORKLOAD_WORKLOAD_H_
