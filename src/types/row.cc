#include "types/row.h"

#include <sstream>

#include "util/strings.h"

namespace qtrade {

std::string TupleColumn::FullName() const {
  if (qualifier.empty()) return name;
  return qualifier + "." + name;
}

Result<size_t> TupleSchema::FindColumn(const std::string& qualifier,
                                       const std::string& name) const {
  size_t found = columns_.size();
  for (size_t i = 0; i < columns_.size(); ++i) {
    const TupleColumn& col = columns_[i];
    if (!EqualsIgnoreCase(col.name, name)) continue;
    if (!qualifier.empty() && !EqualsIgnoreCase(col.qualifier, qualifier)) {
      continue;
    }
    if (found != columns_.size()) {
      return Status::BindError("ambiguous column reference: " + name);
    }
    found = i;
  }
  if (found == columns_.size()) {
    std::string full = qualifier.empty() ? name : qualifier + "." + name;
    return Status::NotFound("column not found: " + full);
  }
  return found;
}

TupleSchema TupleSchema::Concat(const TupleSchema& a, const TupleSchema& b) {
  std::vector<TupleColumn> cols = a.columns();
  cols.insert(cols.end(), b.columns().begin(), b.columns().end());
  return TupleSchema(std::move(cols));
}

std::string TupleSchema::ToString() const {
  std::ostringstream out;
  out << "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out << ", ";
    out << columns_[i].FullName() << " " << TypeKindName(columns_[i].type);
  }
  out << ")";
  return out.str();
}

}  // namespace qtrade
