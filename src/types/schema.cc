#include "types/schema.h"

#include "util/strings.h"

namespace qtrade {

Result<size_t> TableDef::FindColumn(const std::string& column_name) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (EqualsIgnoreCase(columns[i].name, column_name)) return i;
  }
  return Status::NotFound("column " + column_name + " not in table " + name);
}

void SimpleSchemaProvider::AddTable(TableDef table) {
  tables_.push_back(std::move(table));
}

const TableDef* SimpleSchemaProvider::FindTable(const std::string& name) const {
  for (const auto& t : tables_) {
    if (EqualsIgnoreCase(t.name, name)) return &t;
  }
  return nullptr;
}

}  // namespace qtrade
