// Runtime value system: the dynamically-typed cell values flowing through
// the execution engine and appearing as literals in SQL predicates.
#ifndef QTRADE_TYPES_VALUE_H_
#define QTRADE_TYPES_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "util/status.h"

namespace qtrade {

/// Static column types supported by the library.
enum class TypeKind { kInt64, kDouble, kString, kBool };

/// "INT64", "DOUBLE", "STRING", "BOOL".
const char* TypeKindName(TypeKind kind);

/// A single SQL value: one of the supported types or NULL.
/// Comparison follows SQL semantics only where the caller enforces it;
/// Value itself provides total ordering with NULL sorting first and
/// numeric types comparing by value across INT64/DOUBLE.
class Value {
 public:
  Value() : data_(std::monostate{}) {}  // NULL
  static Value Null() { return Value(); }
  static Value Int64(int64_t v) { return Value(Payload(v)); }
  static Value Double(double v) { return Value(Payload(v)); }
  static Value String(std::string v) { return Value(Payload(std::move(v))); }
  static Value Bool(bool v) { return Value(Payload(v)); }

  bool is_null() const { return std::holds_alternative<std::monostate>(data_); }
  bool is_int64() const { return std::holds_alternative<int64_t>(data_); }
  bool is_double() const { return std::holds_alternative<double>(data_); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }
  bool is_bool() const { return std::holds_alternative<bool>(data_); }
  bool is_numeric() const { return is_int64() || is_double(); }

  int64_t int64() const { return std::get<int64_t>(data_); }
  double dbl() const { return std::get<double>(data_); }
  const std::string& str() const { return std::get<std::string>(data_); }
  bool boolean() const { return std::get<bool>(data_); }

  /// Numeric value widened to double; requires is_numeric().
  double AsDouble() const;

  /// Type of a non-null value; calling on NULL is an error.
  Result<TypeKind> Kind() const;

  /// Total order used by sort/aggregation: NULL < BOOL < numbers < strings;
  /// INT64 and DOUBLE compare numerically against each other.
  /// Returns <0, 0, >0.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// SQL-literal rendering: strings quoted with '' (quotes doubled),
  /// NULL -> "NULL", booleans -> TRUE/FALSE.
  std::string ToSqlLiteral() const;

  /// Debug rendering without quoting.
  std::string ToString() const;

  /// Stable hash for hash joins / aggregation (numeric 5 and 5.0 collide,
  /// matching Compare()).
  size_t Hash() const;

 private:
  using Payload =
      std::variant<std::monostate, int64_t, double, std::string, bool>;
  explicit Value(Payload data) : data_(std::move(data)) {}

  Payload data_;
};

}  // namespace qtrade

#endif  // QTRADE_TYPES_VALUE_H_
