// Rows and tuple schemas used by the execution engine.
#ifndef QTRADE_TYPES_ROW_H_
#define QTRADE_TYPES_ROW_H_

#include <string>
#include <vector>

#include "types/value.h"
#include "util/status.h"

namespace qtrade {

/// One column of a tuple schema. `name` is the bare column name; `qualifier`
/// is the table alias the column came from ("" when anonymous, e.g. computed
/// aggregate outputs).
struct TupleColumn {
  std::string qualifier;
  std::string name;
  TypeKind type = TypeKind::kInt64;

  /// "qualifier.name" or just "name" when unqualified.
  std::string FullName() const;
};

/// Ordered set of output columns of an operator or a table fragment.
class TupleSchema {
 public:
  TupleSchema() = default;
  explicit TupleSchema(std::vector<TupleColumn> columns)
      : columns_(std::move(columns)) {}

  const std::vector<TupleColumn>& columns() const { return columns_; }
  size_t size() const { return columns_.size(); }
  const TupleColumn& column(size_t i) const { return columns_[i]; }

  void AddColumn(TupleColumn col) { columns_.push_back(std::move(col)); }

  /// Index of the column matching `qualifier`/`name`. An empty `qualifier`
  /// matches any qualifier (and errors if ambiguous across qualifiers).
  Result<size_t> FindColumn(const std::string& qualifier,
                            const std::string& name) const;

  /// Schema concatenation (join output).
  static TupleSchema Concat(const TupleSchema& a, const TupleSchema& b);

  std::string ToString() const;

 private:
  std::vector<TupleColumn> columns_;
};

/// A materialized tuple; values are positional against some TupleSchema.
using Row = std::vector<Value>;

/// A batch of rows sharing one schema.
struct RowSet {
  TupleSchema schema;
  std::vector<Row> rows;

  size_t size() const { return rows.size(); }
};

}  // namespace qtrade

#endif  // QTRADE_TYPES_ROW_H_
