#include "types/value.h"

#include <cmath>
#include <functional>
#include <sstream>

namespace qtrade {

const char* TypeKindName(TypeKind kind) {
  switch (kind) {
    case TypeKind::kInt64:
      return "INT64";
    case TypeKind::kDouble:
      return "DOUBLE";
    case TypeKind::kString:
      return "STRING";
    case TypeKind::kBool:
      return "BOOL";
  }
  return "?";
}

double Value::AsDouble() const {
  if (is_int64()) return static_cast<double>(int64());
  return dbl();
}

Result<TypeKind> Value::Kind() const {
  if (is_int64()) return TypeKind::kInt64;
  if (is_double()) return TypeKind::kDouble;
  if (is_string()) return TypeKind::kString;
  if (is_bool()) return TypeKind::kBool;
  return Status::InvalidArgument("NULL value has no type");
}

namespace {
// Rank used to order values of different type families.
int FamilyRank(const Value& v) {
  if (v.is_null()) return 0;
  if (v.is_bool()) return 1;
  if (v.is_numeric()) return 2;
  return 3;  // string
}
}  // namespace

int Value::Compare(const Value& other) const {
  int ra = FamilyRank(*this), rb = FamilyRank(other);
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (ra) {
    case 0:  // both NULL
      return 0;
    case 1: {
      bool a = boolean(), b = other.boolean();
      return a == b ? 0 : (a < b ? -1 : 1);
    }
    case 2: {
      if (is_int64() && other.is_int64()) {
        int64_t a = int64(), b = other.int64();
        return a == b ? 0 : (a < b ? -1 : 1);
      }
      double a = AsDouble(), b = other.AsDouble();
      return a == b ? 0 : (a < b ? -1 : 1);
    }
    default: {
      int c = str().compare(other.str());
      return c == 0 ? 0 : (c < 0 ? -1 : 1);
    }
  }
}

std::string Value::ToSqlLiteral() const {
  if (is_null()) return "NULL";
  if (is_bool()) return boolean() ? "TRUE" : "FALSE";
  if (is_string()) {
    std::string out = "'";
    for (char c : str()) {
      if (c == '\'') out += "''";
      else out.push_back(c);
    }
    out += "'";
    return out;
  }
  return ToString();
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_bool()) return boolean() ? "TRUE" : "FALSE";
  if (is_int64()) return std::to_string(int64());
  if (is_string()) return str();
  std::ostringstream out;
  out << dbl();
  return out.str();
}

size_t Value::Hash() const {
  if (is_null()) return 0x9e3779b97f4a7c15ull;
  if (is_bool()) return boolean() ? 0x1234567 : 0x89abcdef;
  if (is_numeric()) {
    // Hash integral doubles as their integer value so 5 and 5.0 collide.
    double d = AsDouble();
    int64_t as_int = static_cast<int64_t>(d);
    if (static_cast<double>(as_int) == d) {
      return std::hash<int64_t>()(as_int);
    }
    return std::hash<double>()(d);
  }
  return std::hash<std::string>()(str());
}

}  // namespace qtrade
