// Logical table schemas (column names and types). Shared by the SQL
// analyzer, the catalog and the storage layer.
#ifndef QTRADE_TYPES_SCHEMA_H_
#define QTRADE_TYPES_SCHEMA_H_

#include <string>
#include <vector>

#include "types/value.h"
#include "util/status.h"

namespace qtrade {

/// Declared column of a base table.
struct ColumnDef {
  std::string name;
  TypeKind type = TypeKind::kInt64;
};

/// Declared base table: name plus ordered columns.
struct TableDef {
  std::string name;
  std::vector<ColumnDef> columns;

  /// Index of `column_name` (case-insensitive), or NotFound.
  Result<size_t> FindColumn(const std::string& column_name) const;
};

/// Read-only source of table definitions; implemented by node catalogs.
class SchemaProvider {
 public:
  virtual ~SchemaProvider() = default;

  /// Returns the table definition or nullptr when unknown.
  virtual const TableDef* FindTable(const std::string& name) const = 0;
};

/// Trivial in-memory SchemaProvider for tests and standalone tools.
class SimpleSchemaProvider : public SchemaProvider {
 public:
  void AddTable(TableDef table);
  const TableDef* FindTable(const std::string& name) const override;

 private:
  std::vector<TableDef> tables_;
};

}  // namespace qtrade

#endif  // QTRADE_TYPES_SCHEMA_H_
