// Seller-side offer/cost memoization across negotiation rounds and
// repeated workload queries. A production federation serves highly
// repetitive workloads, yet without a cache every RFB re-runs the full
// rewrite -> partition-cover -> DP pipeline; this LRU keyed by
// (canonical query signature, local coverage mask) returns previously
// priced offer sets instead.
//
// Correctness contract:
//  * Entries are stamped with the owning catalog's stats epoch at insert
//    time; a lookup under a newer epoch discards the entry (counted as an
//    invalidation), so a cached price never survives a statistics or
//    view-set change.
//  * The coverage-mask key component fingerprints which partitions the
//    node hosts for the query's tables, guarding against placement
//    changes independently of the epoch.
//  * Cached offers are stored under the aliases of the first query that
//    produced them; Lookup rewrites them to the requesting query's
//    aliases (signatures being equal guarantees the positional rename is
//    sound). Offer ids are NOT part of the cached payload — callers mint
//    fresh ids per RFB so wire messages stay deterministic.
//  * Byte-identity caveat: a text-identical repeat (the round-N and
//    repeated-workload case) is answered byte-for-byte as fresh
//    generation would. A merely signature-identical request (permuted
//    aliases/conjuncts) gets the same commodity set at the same prices,
//    but spelled in the stored entry's clause/enumeration order — so
//    offer ids may pair with the set's members differently than fresh
//    generation. Negotiation outcomes are unaffected (ids are opaque
//    and per-RFB).
//  * All operations are thread-safe: one seller's cache is hit
//    concurrently by the buyer's RFB and peers' subcontract RFBs on
//    transport worker threads.
#ifndef QTRADE_OPT_OFFER_CACHE_H_
#define QTRADE_OPT_OFFER_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "opt/offer_generator.h"
#include "opt/signature.h"

namespace qtrade {

/// Hit/miss/evict/invalidate counters (monotonic totals), plus lock-
/// contention accounting: how often a Lookup/Insert found the cache
/// mutex already held (the shared-service hot spot under concurrent
/// negotiations) and the total wall time spent waiting for it.
struct OfferCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;
  int64_t invalidations = 0;
  int64_t lock_waits = 0;
  int64_t lock_wait_ns = 0;
};

/// Rewrites one generated offer (offered statement, schema qualifiers,
/// coverage aliases, scan recipe, view compensation) through `renames`.
/// Identity when `renames` is empty.
GeneratedOffer RenameGeneratedOffer(
    const GeneratedOffer& offer,
    const std::map<std::string, std::string>& renames);

class OfferCache {
 public:
  /// `capacity` bounds the number of cached entries; 0 disables the
  /// cache entirely (lookups miss silently, inserts are dropped).
  explicit OfferCache(size_t capacity = 0) : capacity_(capacity) {}

  size_t capacity() const { return capacity_.load(std::memory_order_relaxed); }
  /// Shrinking below the current size evicts LRU entries immediately.
  void set_capacity(size_t capacity);

  /// Returns the cached offer set for `key` rewritten to `sig`'s
  /// aliases, or nullopt on miss. An entry stamped with a different
  /// epoch than `epoch` is discarded and counted as an invalidation.
  /// `lock_wait_ns` (optional) receives the nanoseconds THIS call spent
  /// waiting for the cache mutex (0 when uncontended) — callers emit it
  /// as a lock-contention trace event.
  std::optional<std::vector<GeneratedOffer>> Lookup(
      const std::string& key, const QuerySignature& sig, uint64_t epoch,
      int64_t* lock_wait_ns = nullptr);

  /// Stores `offers` (a copy) for `key` under `sig`'s aliases at `epoch`.
  void Insert(const std::string& key, const QuerySignature& sig,
              uint64_t epoch, const std::vector<GeneratedOffer>& offers,
              int64_t* lock_wait_ns = nullptr);

  OfferCacheStats stats() const;
  size_t size() const;

 private:
  struct Entry {
    std::string key;
    QuerySignature sig;
    uint64_t epoch = 0;
    std::vector<GeneratedOffer> offers;
  };

  /// Evicts LRU entries down to `capacity_` (mu_ held).
  void TrimLocked();

  /// Acquires mu_, accounting time spent blocked behind another thread
  /// into the contention counters (and `*lock_wait_ns` if non-null).
  std::unique_lock<std::mutex> AcquireTimed(int64_t* lock_wait_ns) const;

  std::atomic<size_t> capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> evictions_{0};
  std::atomic<int64_t> invalidations_{0};
  mutable std::atomic<int64_t> lock_waits_{0};
  mutable std::atomic<int64_t> lock_wait_ns_{0};
};

}  // namespace qtrade

#endif  // QTRADE_OPT_OFFER_CACHE_H_
