// The query-answer commodity (paper §3.1): what sellers put on the table.
// An offer promises delivery of the answer to a (rewritten, possibly
// partial) query, described by the multi-dimensional property vector the
// paper lists — total time, first-row time, rows, rate, freshness,
// completeness — plus an optional monetary price used by competitive
// strategies.
#ifndef QTRADE_OPT_OFFER_H_
#define QTRADE_OPT_OFFER_H_

#include <map>
#include <string>
#include <vector>

#include "sql/ast.h"
#include "types/row.h"

namespace qtrade {

/// What the delivered rows mean relative to the traded query.
enum class OfferKind {
  kCoreRows,          // SPJ rows of a (sub-)join, no aggregation applied
  kPartialAggregate,  // aggregated rows over a partial extent; buyer must
                      // re-aggregate across offers (SUM of SUMs, ...)
  kFinalAnswer,       // the query's exact answer over the offered coverage
};

const char* OfferKindName(OfferKind kind);

/// Which partitions of one traded-query alias the offer accounts for.
struct OfferCoverage {
  std::string alias;
  std::string table;
  std::vector<std::string> partitions;  // covered (incl. provably empty)
};

/// The paper's §3.1 property vector for a query-answer.
struct QueryProperties {
  double total_time_ms = 0;   // execute + transfer to buyer
  double first_row_ms = 0;    // time to first row
  double rows = 0;            // estimated result rows
  double rows_per_sec = 0;    // delivery rate
  double freshness = 1.0;     // [0,1]; 1 = live data
  double completeness = 1.0;  // covered fraction of the asked extent
  double price = 0;           // monetary value (competitive markets)
};

/// A seller's offer for (part of) a traded query.
struct Offer {
  std::string offer_id;   // unique, assigned by the seller
  std::string seller;     // node name
  std::string rfb_id;     // the request-for-bids this answers
  sql::SelectStmt query;  // what will be delivered (parsable SQL)
  TupleSchema schema;     // output schema of `query`
  OfferKind kind = OfferKind::kCoreRows;
  /// Which aliases of the traded query this offer spans, with their
  /// partition coverage. Joint coverage is the cross product (rectangle).
  std::vector<OfferCoverage> coverage;
  QueryProperties props;
  double row_bytes = 64;

  /// Aliases spanned, in coverage order.
  std::vector<std::string> AliasSet() const;

  /// Canonical signature of the promised coverage (alias set plus the
  /// partitions per alias); offers are the same commodity — and hence
  /// price-comparable in auctions/bargaining — only within one
  /// (rfb, signature) group.
  std::string CoverageSignature() const;
  const OfferCoverage* FindCoverage(const std::string& alias) const;

  std::string ToString() const;
};

/// Buyer-side ranking of offers (paper §3.1: "administrator-defined
/// weighting aggregation function"). The default weights only total time,
/// i.e. the paper's running cost definition.
struct OfferValuation {
  double weight_total_time = 1.0;
  double weight_first_row = 0.0;
  double weight_staleness = 0.0;     // penalty * (1 - freshness)
  double weight_incompleteness = 0.0;  // penalty * (1 - completeness)
  double weight_price = 0.0;

  /// Smaller is better.
  double Score(const QueryProperties& props) const {
    return weight_total_time * props.total_time_ms +
           weight_first_row * props.first_row_ms +
           weight_staleness * (1.0 - props.freshness) +
           weight_incompleteness * (1.0 - props.completeness) +
           weight_price * props.price;
  }
};

}  // namespace qtrade

#endif  // QTRADE_OPT_OFFER_H_
