#include "opt/plan_assembler.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "rewrite/partition_rewriter.h"
#include "rewrite/predicate.h"
#include "stats/selectivity.h"

namespace qtrade {

namespace {

using sql::BoundOutput;
using sql::ExprPtr;

/// Join-row heuristic without statistics (the buyer is autonomous and has
/// none): equi joins behave like key/foreign-key joins.
double JoinRowEstimate(double left_rows, double right_rows, int equi_preds,
                       int other_preds) {
  double rows;
  if (equi_preds > 0) {
    rows = std::max(left_rows, right_rows);
    for (int i = 1; i < equi_preds; ++i) rows *= SelectivityDefaults::kEquality;
  } else {
    rows = left_rows * right_rows;
  }
  for (int i = 0; i < other_preds; ++i) rows *= SelectivityDefaults::kOther;
  return std::max(1.0, rows);
}

}  // namespace

double PlanAssembler::Rect::Cells(const std::vector<int>& alias_order) const {
  double cells = 1;
  for (int i : alias_order) {
    cells *= __builtin_popcount(masks[i]);
  }
  return cells;
}

PlanAssembler::PlanAssembler(const sql::BoundQuery* query,
                             const FederationSchema* federation,
                             const PlanFactory* factory,
                             AssemblerOptions options)
    : query_(query),
      federation_(federation),
      factory_(factory),
      options_(options) {
  for (const auto& tref : query_->tables) {
    alias_index_[tref.alias] = static_cast<int>(alias_order_.size());
    alias_order_.push_back(tref.alias);
  }
  partition_bit_.resize(alias_order_.size());
  feasible_counts_.resize(alias_order_.size(), 0);
  // Feasible box: partitions contradicting the query's own local
  // predicates carry no rows and are excluded from coverage accounting.
  for (size_t i = 0; i < alias_order_.size(); ++i) {
    const std::string& alias = alias_order_[i];
    const sql::TableRef* tref = query_->FindTable(alias);
    const TablePartitioning* parts =
        federation_->FindPartitioning(tref->table);
    if (parts == nullptr) continue;
    std::vector<ExprPtr> local = query_->LocalPredicates(alias);
    int bit = 0;
    for (const auto& part : parts->partitions) {
      bool infeasible = false;
      if (part.predicate != nullptr) {
        std::vector<ExprPtr> together = local;
        together.push_back(part.PredicateFor(alias));
        infeasible = ProvablyUnsatisfiable(together);
      }
      if (infeasible) continue;
      partition_bit_[i][part.id] = bit++;
    }
    feasible_counts_[i] = bit;
  }
}

int PlanAssembler::AliasIndex(const std::string& alias) const {
  auto it = alias_index_.find(alias);
  return it == alias_index_.end() ? -1 : it->second;
}

int PlanAssembler::FeasiblePartitionCount(int alias_index) const {
  return feasible_counts_[alias_index];
}

double PlanAssembler::BoxCells(uint32_t alias_mask) const {
  double cells = 1;
  for (size_t i = 0; i < alias_order_.size(); ++i) {
    if ((alias_mask >> i) & 1u) {
      cells *= std::max(1, feasible_counts_[i]);
    }
  }
  return cells;
}

bool PlanAssembler::RectsDisjoint(const Rect& a, const Rect& b,
                                  uint32_t alias_mask) const {
  // Rectangles intersect iff the masks intersect on every alias.
  for (size_t i = 0; i < alias_order_.size(); ++i) {
    if (((alias_mask >> i) & 1u) == 0) continue;
    if ((a.masks[i] & b.masks[i]) == 0) return true;
  }
  return false;
}

bool PlanAssembler::BlocksDisjoint(const Block& a, const Block& b) const {
  for (const auto& ra : a.rects) {
    for (const auto& rb : b.rects) {
      if (!RectsDisjoint(ra, rb, a.alias_mask)) return false;
    }
  }
  return true;
}

std::optional<PlanAssembler::Block> PlanAssembler::SeedBlock(
    const Offer& offer) const {
  Block block;
  Rect rect;
  rect.masks.assign(alias_order_.size(), 0);
  for (const auto& cov : offer.coverage) {
    int idx = AliasIndex(cov.alias);
    if (idx < 0) return std::nullopt;  // offer for aliases we don't know
    block.alias_mask |= 1u << idx;
    uint32_t mask = 0;
    for (const auto& pid : cov.partitions) {
      auto it = partition_bit_[idx].find(pid);
      if (it != partition_bit_[idx].end()) mask |= 1u << it->second;
    }
    if (feasible_counts_[idx] > 0 && mask == 0) {
      return std::nullopt;  // covers only infeasible fragments
    }
    if (feasible_counts_[idx] == 0) mask = 0;  // degenerate: empty box
    rect.masks[idx] = mask;
  }
  if (block.alias_mask == 0) return std::nullopt;
  block.rects.push_back(std::move(rect));
  std::vector<int> indices;
  for (size_t i = 0; i < alias_order_.size(); ++i) {
    if ((block.alias_mask >> i) & 1u) indices.push_back(static_cast<int>(i));
  }
  block.covered_cells = block.rects[0].Cells(indices);
  block.total_cells = BoxCells(block.alias_mask);
  block.rows = offer.props.rows;
  block.offer_ids.insert(offer.offer_id);
  // Price the purchased answer by the buyer's valuation, not raw time:
  // staleness/incompleteness/price weights shift which offers win.
  block.plan = factory_->Remote(offer.seller, sql::ToSql(offer.query),
                                offer.schema, offer.props.rows,
                                offer.row_bytes,
                                options_.valuation.Score(offer.props),
                                offer.offer_id);
  return block;
}

std::optional<PlanAssembler::Block> PlanAssembler::JoinBlocks(
    const Block& a, const Block& b, bool require_connected) const {
  // Connecting predicates: fully inside a|b, straddling the border.
  std::vector<std::pair<sql::BoundColumn, sql::BoundColumn>> keys;
  std::vector<ExprPtr> residual;
  uint32_t ab = a.alias_mask | b.alias_mask;
  for (const auto& conj : query_->conjuncts) {
    if (conj.kind == sql::ConjunctKind::kLocal) continue;
    uint32_t mask = 0;
    bool known = true;
    for (const auto& alias : conj.aliases) {
      int idx = AliasIndex(alias);
      if (idx < 0) {
        known = false;
        break;
      }
      mask |= 1u << idx;
    }
    if (!known) continue;
    if ((mask & a.alias_mask) == 0 || (mask & b.alias_mask) == 0 ||
        (mask & ~ab) != 0) {
      continue;
    }
    if (conj.kind == sql::ConjunctKind::kEquiJoin) {
      sql::BoundColumn l = conj.left, r = conj.right;
      int li = AliasIndex(l.alias);
      if (((a.alias_mask >> li) & 1u) == 0) std::swap(l, r);
      keys.emplace_back(l, r);
    } else {
      residual.push_back(conj.expr);
    }
  }
  if (keys.empty() && residual.empty() && require_connected) {
    return std::nullopt;
  }

  Block out;
  out.alias_mask = ab;
  for (const auto& ra : a.rects) {
    for (const auto& rb : b.rects) {
      Rect r;
      r.masks.assign(alias_order_.size(), 0);
      for (size_t i = 0; i < alias_order_.size(); ++i) {
        r.masks[i] = ra.masks[i] | rb.masks[i];
      }
      out.rects.push_back(std::move(r));
    }
  }
  std::vector<int> indices;
  for (size_t i = 0; i < alias_order_.size(); ++i) {
    if ((ab >> i) & 1u) indices.push_back(static_cast<int>(i));
  }
  out.covered_cells = 0;
  for (const auto& r : out.rects) out.covered_cells += r.Cells(indices);
  out.total_cells = BoxCells(ab);
  out.rows = JoinRowEstimate(a.rows, b.rows,
                             static_cast<int>(keys.size()),
                             static_cast<int>(residual.size()));
  out.offer_ids = a.offer_ids;
  out.offer_ids.insert(b.offer_ids.begin(), b.offer_ids.end());
  if (!keys.empty()) {
    PlanPtr l = a.plan, r = b.plan;
    auto oriented = keys;
    if (l->rows < r->rows) {
      std::swap(l, r);
      for (auto& [x, y] : oriented) std::swap(x, y);
    }
    out.plan = factory_->HashJoin(l, r, std::move(oriented),
                                  sql::AndAll(residual), out.rows);
  } else {
    out.plan = factory_->NlJoin(a.plan, b.plan, sql::AndAll(residual),
                                out.rows);
  }
  return out;
}

namespace {

bool SameSchema(const TupleSchema& a, const TupleSchema& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a.column(i).qualifier != b.column(i).qualifier ||
        a.column(i).name != b.column(i).name) {
      return false;
    }
  }
  return true;
}

}  // namespace

PlanAssembler::Block PlanAssembler::UnionBlocks(const Block& a,
                                                const Block& b) const {
  Block out;
  out.alias_mask = a.alias_mask;
  out.rects = a.rects;
  out.rects.insert(out.rects.end(), b.rects.begin(), b.rects.end());
  out.covered_cells = a.covered_cells + b.covered_cells;
  out.total_cells = a.total_cells;
  out.rows = a.rows + b.rows;
  out.offer_ids = a.offer_ids;
  out.offer_ids.insert(b.offer_ids.begin(), b.offer_ids.end());
  PlanPtr left = a.plan, right = b.plan;
  if (!SameSchema(left->schema, right->schema)) {
    // Offers for the same fragment set may ship extra columns (e.g. the
    // partitioning columns of partial-coverage offers): align branches
    // on their common columns before the bag union.
    std::vector<BoundOutput> common;
    for (const auto& col : left->schema.columns()) {
      if (right->schema.FindColumn(col.qualifier, col.name).ok()) {
        BoundOutput out_col;
        out_col.expr = sql::Col(col.qualifier, col.name);
        out_col.name = col.name;
        out_col.type = col.type;
        common.push_back(std::move(out_col));
      }
    }
    left = factory_->Project(left, common);
    right = factory_->Project(right, common);
  }
  out.plan = factory_->UnionAll({left, right});
  return out;
}

std::optional<PlanAssembler::Block> PlanAssembler::ClipAgainst(
    const Block& acc, const Block& b) const {
  if (acc.alias_mask != b.alias_mask) return std::nullopt;
  // Union of acc's coverage per dimension.
  std::vector<uint32_t> acc_union(alias_order_.size(), 0);
  for (const auto& rect : acc.rects) {
    for (size_t i = 0; i < alias_order_.size(); ++i) {
      acc_union[i] |= rect.masks[i];
    }
  }
  std::vector<int> indices;
  for (size_t i = 0; i < alias_order_.size(); ++i) {
    if ((b.alias_mask >> i) & 1u) indices.push_back(static_cast<int>(i));
  }
  // Pick the dimension whose clip yields the most new cells.
  int best_dim = -1;
  double best_cells = 0;
  std::vector<Rect> best_rects;
  for (int dim : indices) {
    uint32_t keep = ~acc_union[dim];
    std::vector<Rect> clipped;
    double cells = 0;
    for (const auto& rect : b.rects) {
      Rect r = rect;
      r.masks[dim] &= keep;
      if (r.masks[dim] == 0) continue;
      cells += r.Cells(indices);
      clipped.push_back(std::move(r));
    }
    if (cells > best_cells) {
      best_cells = cells;
      best_dim = dim;
      best_rects = std::move(clipped);
    }
  }
  if (best_dim < 0) return std::nullopt;

  // Build the restriction predicate over the kept partitions of best_dim;
  // its columns must be present in the offered schema.
  const std::string& alias = alias_order_[best_dim];
  const sql::TableRef* tref = query_->FindTable(alias);
  const TablePartitioning* partitioning =
      federation_->FindPartitioning(tref->table);
  uint32_t kept_mask = 0;
  for (const auto& rect : best_rects) kept_mask |= rect.masks[best_dim];
  std::vector<const PartitionDef*> kept;
  for (const auto& part : partitioning->partitions) {
    auto bit = partition_bit_[best_dim].find(part.id);
    if (bit != partition_bit_[best_dim].end() &&
        ((kept_mask >> bit->second) & 1u)) {
      kept.push_back(&part);
    }
  }
  sql::ExprPtr restriction = PartitionRestriction(kept, alias);
  if (restriction == nullptr) return std::nullopt;  // whole-table partition
  bool columns_available = true;
  sql::ForEachColumnRef(restriction, [&](const sql::Expr& ref) {
    if (!b.plan->schema.FindColumn(ref.qualifier, ref.column).ok()) {
      columns_available = false;
    }
  });
  if (!columns_available) return std::nullopt;

  Block out;
  out.alias_mask = b.alias_mask;
  out.rects = std::move(best_rects);
  out.covered_cells = best_cells;
  out.total_cells = b.total_cells;
  double fraction =
      b.covered_cells > 0 ? best_cells / b.covered_cells : 0;
  out.rows = std::max(1.0, b.rows * fraction);
  out.offer_ids = b.offer_ids;
  out.plan = factory_->Filter(b.plan, restriction, out.rows);
  return out;
}

PlanPtr PlanAssembler::Compensate(PlanPtr input) const {
  const sql::BoundQuery& q = *query_;
  PlanPtr plan = std::move(input);
  bool aggregated = q.has_aggregates || !q.group_by.empty();
  if (aggregated) {
    double groups = q.group_by.empty()
                        ? 1.0
                        : std::max(1.0, plan->rows * 0.1);
    plan = factory_->Aggregate(plan, q.outputs, q.group_by, q.having,
                               groups);
  } else {
    plan = factory_->Project(plan, q.outputs);
    if (q.distinct) {
      plan = factory_->Dedup(plan, std::max(1.0, plan->rows * 0.5));
    }
  }
  if (!q.order_by.empty()) plan = factory_->Sort(plan, q.order_by);
  if (q.limit.has_value()) plan = factory_->Limit(plan, *q.limit);
  return plan;
}

std::optional<CandidatePlan> PlanAssembler::AssemblePartialAggregates(
    const std::vector<const Offer*>& partials) const {
  if (partials.empty()) return std::nullopt;
  const uint32_t full_mask =
      alias_order_.size() == 32 ? ~0u
                                : ((1u << alias_order_.size()) - 1);
  // Greedy disjoint cover over the box, cheapest per covered cell first.
  std::vector<Block> seeds;
  for (const Offer* offer : partials) {
    auto block = SeedBlock(*offer);
    if (block.has_value() && block->alias_mask == full_mask) {
      seeds.push_back(std::move(*block));
    }
  }
  if (seeds.empty()) return std::nullopt;
  std::sort(seeds.begin(), seeds.end(), [](const Block& a, const Block& b) {
    double ca = a.plan->cost / std::max(1.0, a.covered_cells);
    double cb = b.plan->cost / std::max(1.0, b.covered_cells);
    return ca < cb;
  });
  Block acc = seeds[0];
  for (size_t i = 1; i < seeds.size() && !acc.full(); ++i) {
    if (BlocksDisjoint(acc, seeds[i])) {
      acc = UnionBlocks(acc, seeds[i]);
    } else if (auto clipped = ClipAgainst(acc, seeds[i])) {
      // Partial aggregates can be clipped only when their group keys
      // include the partitioning column; ClipAgainst checks the schema.
      acc = UnionBlocks(acc, *clipped);
    }
  }
  if (!acc.full()) return std::nullopt;

  // Re-aggregation compensation over the partial-aggregate schema
  // (naming convention from the offer generator).
  PlanPtr plan = acc.plan;
  if (acc.offer_ids.size() == 1 && seeds[0].full()) {
    // A single complete partial-aggregate is already the exact grouping;
    // still re-aggregate when HAVING exists to apply it locally.
  }
  std::vector<BoundOutput> outputs;
  std::vector<sql::BoundColumn> group_by;
  size_t agg_index = 0;
  for (const auto& out : query_->outputs) {
    BoundOutput comp;
    comp.name = out.name;
    comp.type = out.type;
    if (!out.is_aggregate) {
      comp.expr = sql::Col("", out.name);
      outputs.push_back(std::move(comp));
      continue;
    }
    comp.is_aggregate = true;
    const sql::Expr& agg = *out.expr;
    std::string base = "agg" + std::to_string(agg_index);
    switch (agg.agg) {
      case sql::AggFunc::kSum:
      case sql::AggFunc::kCount:
        comp.expr = sql::Agg(sql::AggFunc::kSum, sql::Col("", base));
        break;
      case sql::AggFunc::kMin:
        comp.expr = sql::Agg(sql::AggFunc::kMin, sql::Col("", base));
        break;
      case sql::AggFunc::kMax:
        comp.expr = sql::Agg(sql::AggFunc::kMax, sql::Col("", base));
        break;
      case sql::AggFunc::kAvg:
        comp.expr = sql::Binary(
            sql::BinaryOp::kDiv,
            sql::Agg(sql::AggFunc::kSum, sql::Col("", base + "_sum")),
            sql::Agg(sql::AggFunc::kSum, sql::Col("", base + "_cnt")));
        break;
    }
    ++agg_index;
    outputs.push_back(std::move(comp));
  }
  for (const auto& g : query_->group_by) {
    // Group keys were shipped under their output names.
    for (const auto& out : query_->outputs) {
      if (!out.is_aggregate && out.expr->kind == sql::ExprKind::kColumnRef &&
          out.expr->qualifier == g.alias && out.expr->column == g.column) {
        group_by.push_back({"", out.name, out.type});
        break;
      }
    }
  }
  // HAVING over re-aggregated values: rewrite base aggregates like the
  // outputs. Conservative: only support HAVING-free queries or HAVING
  // whose aggregates also appear in the select list — otherwise skip the
  // partial-aggregate strategy.
  sql::ExprPtr having;
  if (query_->having != nullptr) return std::nullopt;
  double groups = group_by.empty() ? 1.0 : std::max(1.0, plan->rows * 0.5);
  plan = factory_->Aggregate(plan, outputs, group_by, having, groups);
  if (!query_->order_by.empty()) {
    // Order over output columns by name.
    std::vector<sql::OrderItem> keys;
    for (const auto& o : query_->order_by) {
      // Map: if the order expr matches an output expr, order by its name.
      bool mapped = false;
      for (const auto& out : query_->outputs) {
        if (sql::ExprEquals(out.expr, o.expr)) {
          keys.push_back({sql::Col("", out.name), o.ascending});
          mapped = true;
          break;
        }
      }
      if (!mapped) return std::nullopt;
    }
    plan = factory_->Sort(plan, keys);
  }
  if (query_->limit.has_value()) plan = factory_->Limit(plan, *query_->limit);

  CandidatePlan candidate;
  candidate.plan = plan;
  candidate.cost = plan->cost;
  candidate.offer_ids.assign(acc.offer_ids.begin(), acc.offer_ids.end());
  return candidate;
}

void PlanAssembler::PruneSubset(std::vector<Block>* list) const {
  if (list->size() <= options_.max_blocks_per_subset) return;
  std::sort(list->begin(), list->end(), [](const Block& a, const Block& b) {
    if (a.full() != b.full()) return a.full();
    double ca = a.plan->cost / std::max(1.0, a.covered_cells);
    double cb = b.plan->cost / std::max(1.0, b.covered_cells);
    return ca < cb;
  });
  list->resize(options_.max_blocks_per_subset);
}

// Union closure within each subset: greedily grow full blocks from
// partials. Each step buys the block with the lowest *marginal* cost
// per newly covered cell — a small disjoint slice offer beats buying
// and clipping a big overlapping offer.
PlanAssembler::Block PlanAssembler::GrowCover(const std::vector<Block>& list,
                                              size_t start,
                                              AssemblerStats* stats) const {
  Block acc = list[start];
  std::vector<bool> used(list.size(), false);
  used[start] = true;
  while (!acc.full()) {
    int best = -1;
    bool best_clip = false;
    Block best_clipped;
    double best_marginal = 0;
    for (size_t i = 0; i < list.size(); ++i) {
      if (used[i]) continue;
      ++stats->unions_considered;
      if (BlocksDisjoint(acc, list[i])) {
        double marginal =
            list[i].plan->cost / std::max(1.0, list[i].covered_cells);
        if (best < 0 || marginal < best_marginal) {
          best = static_cast<int>(i);
          best_clip = false;
          best_marginal = marginal;
        }
      } else if (auto clipped = ClipAgainst(acc, list[i])) {
        // Buying the whole overlapping offer but keeping only the
        // clipped slice: the full quote buys few new cells.
        double marginal = clipped->plan->cost /
                          std::max(1.0, clipped->covered_cells);
        if (best < 0 || marginal < best_marginal) {
          best = static_cast<int>(i);
          best_clip = true;
          best_clipped = std::move(*clipped);
          best_marginal = marginal;
        }
      }
    }
    if (best < 0) break;
    used[best] = true;
    acc = UnionBlocks(acc, best_clip ? best_clipped : list[best]);
  }
  return acc;
}

void PlanAssembler::CloseUnderUnion(std::vector<Block>* list,
                                    AssemblerStats* stats) const {
  if (list->empty()) return;
  std::sort(list->begin(), list->end(), [](const Block& a, const Block& b) {
    double ca = a.plan->cost / std::max(1.0, a.covered_cells);
    double cb = b.plan->cost / std::max(1.0, b.covered_cells);
    return ca < cb;
  });
  size_t original = list->size();
  for (size_t start = 0; start < original && start < 4; ++start) {
    Block acc = GrowCover(*list, start, stats);
    if (acc.covered_cells > (*list)[start].covered_cells) {
      list->push_back(std::move(acc));
    }
  }
  PruneSubset(list);
}

std::vector<PlanAssembler::Block> PlanAssembler::ComputeCoverageSubset(
    uint32_t s, const std::map<uint32_t, std::vector<Block>>& blocks,
    AssemblerStats* stats) const {
  std::vector<Block> out_list;
  if (auto seeded = blocks.find(s); seeded != blocks.end()) {
    out_list = seeded->second;
  }
  for (int pass = 0; pass < 2; ++pass) {
    bool require_connected = (pass == 0);
    bool produced = false;
    for (uint32_t sub = (s - 1) & s; sub > 0; sub = (sub - 1) & s) {
      uint32_t rest = s ^ sub;
      if (sub > rest) continue;
      auto left_it = blocks.find(sub);
      auto right_it = blocks.find(rest);
      if (left_it == blocks.end() || right_it == blocks.end()) continue;
      for (const Block& a : left_it->second) {
        for (const Block& b : right_it->second) {
          ++stats->joins_considered;
          auto joined = JoinBlocks(a, b, require_connected);
          if (joined.has_value()) {
            produced = true;
            out_list.push_back(std::move(*joined));
          }
        }
      }
    }
    if (produced || !out_list.empty()) break;
  }
  CloseUnderUnion(&out_list, stats);
  PruneSubset(&out_list);
  return out_list;
}

Result<std::vector<CandidatePlan>> PlanAssembler::Assemble(
    const std::vector<Offer>& offers, obs::Tracer* tracer,
    obs::SpanRef parent) {
  stats_ = AssemblerStats{};
  const size_t n = alias_order_.size();
  if (n == 0 || n > 20) {
    return Status::InvalidArgument("unsupported query arity");
  }
  const uint32_t full = (n == 32) ? ~0u : ((1u << n) - 1);
  const bool aggregated =
      query_->has_aggregates || !query_->group_by.empty();

  std::vector<CandidatePlan> candidates;

  // Direct final-answer offers (aggregate pushdown with complete local
  // coverage, and view-based answers).
  std::vector<const Offer*> partial_aggs;
  std::map<uint32_t, std::vector<Block>> blocks;
  for (const auto& offer : offers) {
    switch (offer.kind) {
      case OfferKind::kFinalAnswer: {
        auto block = SeedBlock(offer);
        if (block.has_value() && block->alias_mask == full &&
            block->full()) {
          CandidatePlan candidate;
          candidate.plan = block->plan;
          candidate.cost = block->plan->cost;
          candidate.offer_ids = {offer.offer_id};
          candidates.push_back(std::move(candidate));
        } else if (block.has_value() && block->alias_mask == full &&
                   aggregated && options_.allow_partial_aggregates) {
          // A final answer over partial coverage behaves like a partial
          // aggregate only when the aggregates decompose; the offer
          // generator emits kPartialAggregate in that case, so skip here.
        }
        break;
      }
      case OfferKind::kPartialAggregate:
        partial_aggs.push_back(&offer);
        break;
      case OfferKind::kCoreRows: {
        auto block = SeedBlock(offer);
        if (block.has_value()) {
          blocks[block->alias_mask].push_back(std::move(*block));
          ++stats_.blocks_created;
        }
        break;
      }
    }
  }

  if (options_.allow_partial_aggregates && aggregated) {
    auto partial_plan = AssemblePartialAggregates(partial_aggs);
    if (partial_plan.has_value()) {
      candidates.push_back(std::move(*partial_plan));
    }
  }

  // --- Coverage DP over core blocks.
  for (auto& [mask, list] : blocks) CloseUnderUnion(&list, &stats_);

  // Level-synchronous coverage search (mirrors LocalOptimizer::Run):
  // every alias subset of popcount `size` joins only strictly smaller
  // subsets, so one level's cells are independent and fan out over the
  // shared pool. Each cell is owned by exactly one task and the merge
  // barrier adopts cell lists in ascending-mask order, so the block map
  // evolves identically to the serial walk at every thread count.
  PlanSearchPool* pool = nullptr;
  const int threads = options_.dp_threads;
  if (threads > 1) {
    pool = PlanSearchPool::Shared();
    pool->EnsureWorkers(threads - 1);
  }

  std::vector<uint32_t> level_masks;
  for (int size = 2; size <= static_cast<int>(n); ++size) {
    level_masks.clear();
    for (uint32_t s = 1; s <= full; ++s) {
      if (__builtin_popcount(s) == size) level_masks.push_back(s);
    }
    std::vector<std::vector<Block>> level_results(level_masks.size());
    std::vector<AssemblerStats> cell_stats(level_masks.size());
    {
      obs::Span level_span;
      if (obs::Tracer::Active(tracer)) {
        level_span = tracer->StartSpan(
            "dp_level[" + std::to_string(size) + "]", parent);
        level_span.Attr("masks", static_cast<int64_t>(level_masks.size()));
        level_span.Attr("threads",
                        static_cast<int64_t>(std::max(1, threads)));
      }
      auto compute = [&](int i) {
        level_results[i] =
            ComputeCoverageSubset(level_masks[i], blocks, &cell_stats[i]);
      };
      if (pool != nullptr && level_masks.size() > 1) {
        pool->ParallelFor(static_cast<int>(level_masks.size()), threads,
                          compute);
      } else {
        for (int i = 0; i < static_cast<int>(level_masks.size()); ++i) {
          compute(i);
        }
      }
    }
    obs::Span merge_span;
    if (obs::Tracer::Active(tracer)) {
      merge_span = tracer->StartSpan("dp_merge", parent);
      merge_span.Attr("level", static_cast<int64_t>(size));
    }
    for (size_t i = 0; i < level_masks.size(); ++i) {
      blocks[level_masks[i]] = std::move(level_results[i]);
      stats_.joins_considered += cell_stats[i].joins_considered;
      stats_.unions_considered += cell_stats[i].unions_considered;
      stats_.blocks_created += cell_stats[i].blocks_created;
    }
    // IDP-M(k,m) on the buyer side: prune subset lists at level k. The
    // sort key is explicitly (best cost, mask) so the pruned set can
    // never depend on container iteration order.
    if (options_.idp.enabled() && size == options_.idp.k &&
        size < static_cast<int>(n)) {
      std::vector<std::pair<double, uint32_t>> level;
      for (const auto& [mask, list] : blocks) {
        if (__builtin_popcount(mask) != options_.idp.k || list.empty()) {
          continue;
        }
        double best = list.front().plan->cost;
        for (const auto& blk : list) best = std::min(best, blk.plan->cost);
        level.emplace_back(best, mask);
      }
      if (static_cast<int>(level.size()) > options_.idp.m) {
        std::sort(level.begin(), level.end(),
                  [](const std::pair<double, uint32_t>& a,
                     const std::pair<double, uint32_t>& b) {
                    if (a.first != b.first) return a.first < b.first;
                    return a.second < b.second;
                  });
        for (size_t i = options_.idp.m; i < level.size(); ++i) {
          blocks.erase(level[i].second);
        }
      }
    }
  }

  // Full-coverage core blocks -> compensated candidates.
  auto full_it = blocks.find(full);
  if (full_it != blocks.end()) {
    std::vector<Block*> fulls;
    for (auto& blk : full_it->second) {
      if (blk.full()) fulls.push_back(&blk);
    }
    std::sort(fulls.begin(), fulls.end(), [](const Block* a, const Block* b) {
      return a->plan->cost < b->plan->cost;
    });
    size_t take = std::min<size_t>(fulls.size(), 2);
    for (size_t i = 0; i < take; ++i) {
      CandidatePlan candidate;
      candidate.plan = Compensate(fulls[i]->plan);
      candidate.cost = candidate.plan->cost;
      candidate.offer_ids.assign(fulls[i]->offer_ids.begin(),
                                 fulls[i]->offer_ids.end());
      candidates.push_back(std::move(candidate));
    }
  }

  std::sort(candidates.begin(), candidates.end(),
            [](const CandidatePlan& a, const CandidatePlan& b) {
              return a.cost < b.cost;
            });
  if (candidates.size() > options_.max_candidates) {
    candidates.resize(options_.max_candidates);
  }
  return candidates;
}

}  // namespace qtrade
