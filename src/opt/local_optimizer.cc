#include "opt/local_optimizer.h"

#include <algorithm>
#include <cassert>

#include "stats/selectivity.h"

namespace qtrade {

TupleSchema QualifiedSchema(const TableDef& table, const std::string& alias) {
  TupleSchema schema;
  for (const auto& col : table.columns) {
    schema.AddColumn({alias, col.name, col.type});
  }
  return schema;
}

LocalOptimizer::LocalOptimizer(const sql::BoundQuery* query,
                               std::vector<AliasInput> inputs,
                               const PlanFactory* factory, IdpParams idp)
    : query_(query), inputs_(std::move(inputs)), factory_(factory), idp_(idp) {
  for (size_t i = 0; i < inputs_.size(); ++i) {
    alias_index_[inputs_[i].alias] = static_cast<int>(i);
  }
}

std::optional<int> LocalOptimizer::AliasIndex(const std::string& alias) const {
  auto it = alias_index_.find(alias);
  if (it == alias_index_.end()) return std::nullopt;
  return it->second;
}

SubPlan LocalOptimizer::MakeLeaf(int i) const {
  const AliasInput& input = inputs_[i];
  std::vector<sql::ExprPtr> preds = query_->LocalPredicates(input.alias);
  if (input.extra_filter) preds.push_back(input.extra_filter);
  double selectivity = EstimateConjunctSelectivity(preds, input.stats);
  double out_rows = std::max(0.0, input.stats.row_count * selectivity);
  double row_bytes = EstimateRowBytes(input.schema);

  SubPlan sub;
  sub.mask = 1u << i;
  sub.rows = out_rows;
  sub.plan = factory_->Scan(input.table, input.alias, input.schema,
                            input.partitions, sql::AndAll(preds),
                            static_cast<double>(input.stats.row_count),
                            out_rows, row_bytes);
  return sub;
}

std::vector<const sql::Conjunct*> LocalOptimizer::ConnectingPredicates(
    uint32_t a, uint32_t b) const {
  std::vector<const sql::Conjunct*> out;
  for (const auto& conj : query_->conjuncts) {
    if (conj.kind == sql::ConjunctKind::kLocal) continue;
    uint32_t mask = 0;
    bool known = true;
    for (const auto& alias : conj.aliases) {
      auto idx = AliasIndex(alias);
      if (!idx.has_value()) {
        known = false;
        break;
      }
      mask |= 1u << *idx;
    }
    if (!known) continue;  // touches aliases outside this enumeration
    if ((mask & a) != 0 && (mask & b) != 0 && (mask & ~(a | b)) == 0) {
      out.push_back(&conj);
    }
  }
  return out;
}

std::optional<SubPlan> LocalOptimizer::Join(const SubPlan& left,
                                            const SubPlan& right,
                                            bool require_connected) const {
  assert((left.mask & right.mask) == 0);
  std::vector<const sql::Conjunct*> connecting =
      ConnectingPredicates(left.mask, right.mask);
  if (connecting.empty() && require_connected) return std::nullopt;

  // Cardinality: independence across predicates, System-R style.
  double rows = left.rows * right.rows;
  std::vector<std::pair<sql::BoundColumn, sql::BoundColumn>> keys;
  std::vector<sql::ExprPtr> residual;
  for (const sql::Conjunct* conj : connecting) {
    if (conj->kind == sql::ConjunctKind::kEquiJoin) {
      const ColumnStats* ls = nullptr;
      const ColumnStats* rs = nullptr;
      if (auto idx = AliasIndex(conj->left.alias)) {
        ls = FilteredStats(*idx).FindColumn(conj->left.column);
      }
      if (auto idx = AliasIndex(conj->right.alias)) {
        rs = FilteredStats(*idx).FindColumn(conj->right.column);
      }
      rows *= EstimateEquiJoinSelectivity(ls, rs);
      // Orient the key pair as (left-side-in-left-subplan, right...).
      sql::BoundColumn l = conj->left, r = conj->right;
      auto li = AliasIndex(l.alias);
      if (li.has_value() && ((left.mask >> *li) & 1u) == 0) std::swap(l, r);
      keys.emplace_back(l, r);
    } else {
      rows *= SelectivityDefaults::kOther;
      residual.push_back(conj->expr);
    }
  }
  rows = std::max(rows, 0.0);

  SubPlan out;
  out.mask = left.mask | right.mask;
  out.rows = rows;
  if (!keys.empty()) {
    // Build side = smaller input; the factory builds on the right child.
    PlanPtr l = left.plan, r = right.plan;
    std::vector<std::pair<sql::BoundColumn, sql::BoundColumn>> oriented = keys;
    if (l->rows < r->rows) {
      std::swap(l, r);
      for (auto& [a, b] : oriented) std::swap(a, b);
    }
    out.plan = factory_->HashJoin(l, r, std::move(oriented),
                                  sql::AndAll(residual), rows);
  } else {
    // Cartesian or non-equi join.
    out.plan =
        factory_->NlJoin(left.plan, right.plan, sql::AndAll(residual), rows);
  }
  return out;
}

std::optional<SubPlan> LocalOptimizer::BestForSubset(uint32_t s) const {
  std::optional<SubPlan> best;
  // Pass 0 admits only connected splits; pass 1 (cartesian fallback) runs
  // only when pass 0 produced nothing for this subset.
  for (int pass = 0; pass < 2 && !best.has_value(); ++pass) {
    const bool require_connected = (pass == 0);
    for (uint32_t sub = (s - 1) & s; sub > 0; sub = (sub - 1) & s) {
      const uint32_t rest = s ^ sub;
      if (sub > rest) continue;  // each split once
      auto left = subplans_.find(sub);
      auto right = subplans_.find(rest);
      if (left == subplans_.end() || right == subplans_.end()) continue;
      auto joined = Join(left->second, right->second, require_connected);
      if (!joined.has_value()) continue;
      if (!best.has_value() || joined->plan->cost < best->plan->cost) {
        best = std::move(*joined);
      }
    }
  }
  return best;
}

Status LocalOptimizer::Run() {
  if (ran_) return Status::OK();
  ran_ = true;
  if (inputs_.empty()) {
    return Status::InvalidArgument("no inputs to enumerate");
  }
  if (inputs_.size() > 20) {
    return Status::InvalidArgument("too many relations for DP enumeration");
  }

  // Per-alias filtered statistics.
  filtered_stats_.resize(inputs_.size());
  filtered_rows_.resize(inputs_.size());
  for (size_t i = 0; i < inputs_.size(); ++i) {
    std::vector<sql::ExprPtr> preds =
        query_->LocalPredicates(inputs_[i].alias);
    if (inputs_[i].extra_filter) preds.push_back(inputs_[i].extra_filter);
    double sel = EstimateConjunctSelectivity(preds, inputs_[i].stats);
    filtered_stats_[i] = inputs_[i].stats.Scaled(sel);
    filtered_rows_[i] = filtered_stats_[i].row_count;
  }

  const int n = static_cast<int>(inputs_.size());
  const uint32_t full = (n == 32) ? ~0u : ((1u << n) - 1);

  for (int i = 0; i < n; ++i) {
    SubPlan leaf = MakeLeaf(i);
    subplans_[leaf.mask] = std::move(leaf);
  }

  auto consider = [&](SubPlan candidate) {
    auto it = subplans_.find(candidate.mask);
    if (it == subplans_.end() ||
        candidate.plan->cost < it->second.plan->cost) {
      subplans_[candidate.mask] = std::move(candidate);
    }
  };

  // Level-synchronous lattice search: every subset of popcount `size`
  // depends only on strictly smaller subsets, so one level's masks are
  // independent and fan out over the shared pool; the merge below is the
  // barrier before the next level. Each mask is owned by exactly one
  // task, so the merge has no cross-thread ties to break — within a mask,
  // BestForSubset's fixed split order already picked the winner — and
  // adopting winners in ascending-mask order makes the walk of subplans_
  // identical to the serial enumeration, byte for byte.
  PlanSearchPool* pool = nullptr;
  const int threads = search_.threads;
  if (threads > 1) {
    pool = search_.pool != nullptr ? search_.pool : PlanSearchPool::Shared();
    pool->EnsureWorkers(threads - 1);
  }
  obs::Tracer* tracer = search_.tracer;

  std::vector<uint32_t> masks;
  std::vector<std::optional<SubPlan>> results;
  for (int size = 2; size <= n; ++size) {
    masks.clear();
    for (uint32_t s = 1; s <= full; ++s) {
      if (__builtin_popcount(s) == size) masks.push_back(s);
    }
    {
      obs::Span level_span;
      if (obs::Tracer::Active(tracer)) {
        level_span = tracer->StartSpan(
            "dp_level[" + std::to_string(size) + "]", search_.parent);
        level_span.Attr("masks", static_cast<int64_t>(masks.size()));
        level_span.Attr("threads",
                        static_cast<int64_t>(std::max(1, threads)));
      }
      results.assign(masks.size(), std::nullopt);
      auto compute = [&](int i) { results[i] = BestForSubset(masks[i]); };
      if (pool != nullptr && masks.size() > 1) {
        pool->ParallelFor(static_cast<int>(masks.size()), threads, compute);
      } else {
        for (int i = 0; i < static_cast<int>(masks.size()); ++i) compute(i);
      }
    }
    obs::Span merge_span;
    if (obs::Tracer::Active(tracer)) {
      merge_span = tracer->StartSpan("dp_merge", search_.parent);
      merge_span.Attr("level", static_cast<int64_t>(size));
    }
    for (size_t i = 0; i < masks.size(); ++i) {
      if (results[i].has_value()) {
        subplans_[masks[i]] = std::move(*results[i]);
      }
    }
    // IDP-M(k, m): after finishing level k, keep only the best m subplans
    // of exactly k relations (singletons always survive). The sort key is
    // explicitly (cost, mask) so the pruned set can never depend on
    // container iteration order.
    if (idp_.enabled() && size == idp_.k && size < n) {
      std::vector<std::pair<double, uint32_t>> level;
      for (const auto& [mask, sub] : subplans_) {
        if (__builtin_popcount(mask) == idp_.k) {
          level.emplace_back(sub.plan->cost, mask);
        }
      }
      if (static_cast<int>(level.size()) > idp_.m) {
        std::sort(level.begin(), level.end(),
                  [](const std::pair<double, uint32_t>& a,
                     const std::pair<double, uint32_t>& b) {
                    if (a.first != b.first) return a.first < b.first;
                    return a.second < b.second;
                  });
        for (size_t i = idp_.m; i < level.size(); ++i) {
          subplans_.erase(level[i].second);
        }
      }
    }
  }

  // IDP pruning can make the full mask unreachable through DP splits;
  // complete greedily from the surviving blocks.
  if (subplans_.count(full) == 0) {
    // Greedily merge the cheapest joinable pair starting from singletons
    // (IDP's standard completion step).
    std::vector<SubPlan> blocks;
    for (int i = 0; i < n; ++i) blocks.push_back(subplans_[1u << i]);
    while (blocks.size() > 1) {
      double best_cost = 0;
      int bi = -1, bj = -1;
      std::optional<SubPlan> best;
      for (size_t i = 0; i < blocks.size(); ++i) {
        for (size_t j = i + 1; j < blocks.size(); ++j) {
          for (bool require : {true, false}) {
            auto joined = Join(blocks[i], blocks[j], require);
            if (joined.has_value()) {
              if (!best.has_value() || joined->plan->cost < best_cost) {
                best_cost = joined->plan->cost;
                best = joined;
                bi = static_cast<int>(i);
                bj = static_cast<int>(j);
              }
              break;
            }
          }
        }
      }
      if (!best.has_value()) break;
      blocks.erase(blocks.begin() + bj);
      blocks.erase(blocks.begin() + bi);
      blocks.push_back(std::move(*best));
      consider(blocks.back());
    }
  }

  return Status::OK();
}

Result<PlanPtr> LocalOptimizer::BestFullPlan() const {
  const int n = static_cast<int>(inputs_.size());
  const uint32_t full = (n == 32) ? ~0u : ((1u << n) - 1);
  auto it = subplans_.find(full);
  if (it == subplans_.end()) {
    return Status::NoPlanFound("enumeration produced no full plan");
  }
  return it->second.plan;
}

Result<double> LocalOptimizer::FullRows() const {
  const int n = static_cast<int>(inputs_.size());
  const uint32_t full = (n == 32) ? ~0u : ((1u << n) - 1);
  auto it = subplans_.find(full);
  if (it == subplans_.end()) {
    return Status::NoPlanFound("enumeration produced no full plan");
  }
  return it->second.rows;
}

}  // namespace qtrade
