#include "opt/signature.h"

#include <algorithm>

namespace qtrade {

namespace {

using sql::BinaryOp;
using sql::Expr;
using sql::ExprKind;
using sql::ExprPtr;

/// Literal rendering with a type tag (so 5, 5.0 and '5' differ).
std::string LiteralSig(const Value& v) {
  if (v.is_null()) return "n:NULL";
  if (v.is_int64()) return "i:" + v.ToSqlLiteral();
  if (v.is_double()) return "d:" + v.ToSqlLiteral();
  if (v.is_bool()) return "b:" + v.ToSqlLiteral();
  return "s:" + v.ToSqlLiteral();
}

const char* BinarySigOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNe: return "<>";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAnd: return "AND";
    case BinaryOp::kOr: return "OR";
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
  }
  return "?";
}

class Canonicalizer {
 public:
  explicit Canonicalizer(const std::map<std::string, std::string>* ids)
      : ids_(ids) {}

  std::string Sig(const ExprPtr& expr) const {
    if (!expr) return "-";
    const Expr& e = *expr;
    switch (e.kind) {
      case ExprKind::kColumnRef: {
        auto it = ids_->find(e.qualifier);
        const std::string& id =
            it != ids_->end() ? it->second : e.qualifier;
        return "c:" + id + "." + e.column;
      }
      case ExprKind::kLiteral:
        return LiteralSig(e.literal);
      case ExprKind::kStar:
        return "*";
      case ExprKind::kUnary:
        return std::string("(") + (e.uop == sql::UnaryOp::kNot ? "NOT " : "-")
               + Sig(e.left) + ")";
      case ExprKind::kAggregate: {
        std::string out = std::string("agg:") + sql::AggFuncName(e.agg);
        if (e.distinct) out += ":D";
        return out + "(" + (e.left ? Sig(e.left) : "*") + ")";
      }
      case ExprKind::kInList: {
        std::vector<std::string> values;
        values.reserve(e.in_values.size());
        for (const auto& v : e.in_values) values.push_back(LiteralSig(v));
        std::sort(values.begin(), values.end());
        std::string out = "(" + Sig(e.left);
        out += e.negated ? " NOT IN [" : " IN [";
        for (size_t i = 0; i < values.size(); ++i) {
          if (i > 0) out += ",";
          out += values[i];
        }
        return out + "])";
      }
      case ExprKind::kBinary:
        return BinarySig(e);
    }
    return "?";
  }

 private:
  std::string BinarySig(const Expr& e) const {
    // AND/OR chains: flatten and sort the operand signatures, so
    // conjunct/disjunct order never matters.
    if (e.bop == BinaryOp::kAnd || e.bop == BinaryOp::kOr) {
      std::vector<std::string> parts;
      Flatten(e, e.bop, &parts);
      std::sort(parts.begin(), parts.end());
      std::string out = "(";
      for (size_t i = 0; i < parts.size(); ++i) {
        if (i > 0) out += std::string(" ") + BinarySigOp(e.bop) + " ";
        out += parts[i];
      }
      return out + ")";
    }
    std::string l = Sig(e.left);
    std::string r = Sig(e.right);
    BinaryOp op = e.bop;
    // Symmetric operators order their operands; asymmetric comparisons
    // are flipped instead (a < b == b > a), so both spellings agree.
    const bool symmetric = op == BinaryOp::kEq || op == BinaryOp::kNe ||
                           op == BinaryOp::kAdd || op == BinaryOp::kMul;
    if (symmetric && r < l) {
      std::swap(l, r);
    } else if (sql::IsComparison(op) && !symmetric && r < l) {
      std::swap(l, r);
      op = sql::FlipComparison(op);
    }
    return "(" + l + " " + BinarySigOp(op) + " " + r + ")";
  }

  void Flatten(const Expr& e, BinaryOp op,
               std::vector<std::string>* parts) const {
    for (const ExprPtr& side : {e.left, e.right}) {
      if (side && side->kind == ExprKind::kBinary && side->bop == op) {
        Flatten(*side, op, parts);
      } else {
        parts->push_back(Sig(side));
      }
    }
  }

  const std::map<std::string, std::string>* ids_;
};

}  // namespace

namespace {
/// Shared by CanonicalSignature and CanonicalShape: the canonical
/// serialization split at the W[] section, so the conjunct set can be
/// inspected (containment) or inlined (cache keys) without the two
/// call sites drifting apart.
struct SplitSignature {
  std::string prefix;                  // "T[...]W["
  std::vector<std::string> conjuncts;  // sorted canonical conjuncts
  std::string suffix;                  // "]S[...]G[...]H[...]O[...]..."
  std::vector<std::string> aliases;
};

SplitSignature BuildSplitSignature(const sql::BoundQuery& query) {
  SplitSignature sig;

  // Canonical alias order: by (table, alias). Positional ids then make
  // the serialization independent of the original alias spellings.
  std::vector<const sql::TableRef*> tables;
  tables.reserve(query.tables.size());
  for (const auto& t : query.tables) tables.push_back(&t);
  std::sort(tables.begin(), tables.end(),
            [](const sql::TableRef* a, const sql::TableRef* b) {
              if (a->table != b->table) return a->table < b->table;
              return a->alias < b->alias;
            });
  std::map<std::string, std::string> ids;
  std::string text = "T[";
  for (size_t i = 0; i < tables.size(); ++i) {
    ids[tables[i]->alias] = "t" + std::to_string(i);
    sig.aliases.push_back(tables[i]->alias);
    if (i > 0) text += ",";
    text += tables[i]->table;
  }
  text += "]";

  Canonicalizer canon(&ids);

  sig.conjuncts.reserve(query.conjuncts.size());
  for (const auto& c : query.conjuncts) {
    sig.conjuncts.push_back(canon.Sig(c.expr));
  }
  std::sort(sig.conjuncts.begin(), sig.conjuncts.end());
  text += "W[";
  sig.prefix = std::move(text);
  text.clear();
  text += "]";

  // Output order is part of the delivered schema: keep it.
  text += "S[";
  for (size_t i = 0; i < query.outputs.size(); ++i) {
    const auto& out = query.outputs[i];
    if (i > 0) text += ",";
    text += out.name + "=" + canon.Sig(out.expr);
  }
  text += "]";

  std::vector<std::string> groups;
  groups.reserve(query.group_by.size());
  for (const auto& g : query.group_by) {
    groups.push_back(canon.Sig(sql::Col(g.alias, g.column)));
  }
  std::sort(groups.begin(), groups.end());
  text += "G[";
  for (size_t i = 0; i < groups.size(); ++i) {
    if (i > 0) text += ",";
    text += groups[i];
  }
  text += "]";

  text += "H[" + canon.Sig(query.having) + "]";

  text += "O[";
  for (size_t i = 0; i < query.order_by.size(); ++i) {
    const auto& o = query.order_by[i];
    if (i > 0) text += ",";
    text += canon.Sig(o.expr) + (o.ascending ? ":a" : ":d");
  }
  text += "]";

  if (query.distinct) text += "D";
  if (query.limit.has_value()) text += "L" + std::to_string(*query.limit);

  sig.suffix = std::move(text);
  return sig;
}

std::string JoinConjuncts(const std::vector<std::string>& conjuncts) {
  std::string out;
  for (size_t i = 0; i < conjuncts.size(); ++i) {
    if (i > 0) out += "&";
    out += conjuncts[i];
  }
  return out;
}

}  // namespace

QuerySignature CanonicalSignature(const sql::BoundQuery& query) {
  SplitSignature split = BuildSplitSignature(query);
  QuerySignature sig;
  sig.text = split.prefix + JoinConjuncts(split.conjuncts) + split.suffix;
  sig.aliases = std::move(split.aliases);
  return sig;
}

QueryShape CanonicalShape(const sql::BoundQuery& query) {
  SplitSignature split = BuildSplitSignature(query);
  QueryShape shape;
  shape.skeleton = split.prefix + split.suffix;
  shape.conjuncts = std::move(split.conjuncts);
  shape.aliases = std::move(split.aliases);
  return shape;
}

bool ShapeContains(const QueryShape& super, const QueryShape& sub) {
  if (super.skeleton != sub.skeleton) return false;
  // More conjuncts = more restrictive: sub must carry every conjunct
  // super has (and may add its own).
  return std::includes(sub.conjuncts.begin(), sub.conjuncts.end(),
                       super.conjuncts.begin(), super.conjuncts.end());
}

std::map<std::string, std::string> AliasRenameMap(const QuerySignature& from,
                                                  const QuerySignature& to) {
  std::map<std::string, std::string> renames;
  const size_t n = std::min(from.aliases.size(), to.aliases.size());
  for (size_t i = 0; i < n; ++i) {
    if (from.aliases[i] != to.aliases[i]) {
      renames[from.aliases[i]] = to.aliases[i];
    }
  }
  return renames;
}

sql::ExprPtr RenameAliases(const sql::ExprPtr& expr,
                           const std::map<std::string, std::string>& renames) {
  if (!expr || renames.empty()) return expr;
  return sql::RewriteColumnRefs(expr, [&](const sql::Expr& ref) {
    auto it = renames.find(ref.qualifier);
    if (it == renames.end()) return sql::ExprPtr(nullptr);
    return sql::Col(it->second, ref.column);
  });
}

sql::SelectStmt RenameAliases(
    const sql::SelectStmt& stmt,
    const std::map<std::string, std::string>& renames) {
  if (renames.empty()) return stmt;
  sql::SelectStmt out = stmt;
  for (auto& tref : out.from) {
    auto it = renames.find(tref.alias);
    if (it != renames.end()) tref.alias = it->second;
  }
  for (auto& item : out.items) item.expr = RenameAliases(item.expr, renames);
  out.where = RenameAliases(out.where, renames);
  for (auto& g : out.group_by) g = RenameAliases(g, renames);
  out.having = RenameAliases(out.having, renames);
  for (auto& o : out.order_by) o.expr = RenameAliases(o.expr, renames);
  return out;
}

}  // namespace qtrade
