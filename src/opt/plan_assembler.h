// Buyer-side plan generation (paper §3.6): combine purchased query-answers
// (offers) into executable plans for the original query — an instance of
// answering queries using views.
//
// Coverage accounting: each offer covers a *rectangle* of fragment
// combinations (per-alias partition sets; joint coverage is their cross
// product). Blocks built by the assembler carry a pairwise-disjoint list
// of rectangles, so "complete" is exactly "sum of rectangle cell counts ==
// cells of the feasible box". UNION ALL is only applied to disjoint
// blocks, which keeps bag semantics correct under replication; overlap
// resolution is the job of the §3.7 buyer predicates analyser, which asks
// for disjoint sub-queries in the next trading iteration.
//
// Both the exact DP and the IDP-M(k,m) variant referenced by the paper
// are provided.
#ifndef QTRADE_OPT_PLAN_ASSEMBLER_H_
#define QTRADE_OPT_PLAN_ASSEMBLER_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "opt/local_optimizer.h"
#include "opt/offer.h"
#include "plan/plan_factory.h"
#include "util/status.h"

namespace qtrade {

struct AssemblerOptions {
  /// §3.1 "administrator-defined weighting aggregation function": the
  /// buyer-side value of an offer. Remote leaves are priced by this
  /// score, so non-time dimensions (staleness, incompleteness, money)
  /// steer plan choice. Default weights = total time only.
  OfferValuation valuation;
  /// IDP-M(k,m) pruning of the coverage DP ({0,0} = exact).
  IdpParams idp;
  /// Blocks retained per alias subset (cheapest full + best partials).
  size_t max_blocks_per_subset = 12;
  /// Candidate plans returned, best first.
  size_t max_candidates = 4;
  /// Consider assembling from partial-aggregate offers.
  bool allow_partial_aggregates = true;
  /// Threads searching one coverage-DP level (QtOptions::dp_threads).
  /// <=1 = serial on the caller; higher fans each level out over the
  /// process-wide PlanSearchPool. Candidates, costs and stats() are
  /// byte-identical at every setting.
  int dp_threads = 0;
};

/// A candidate execution plan plus provenance for the §3.7 analyser.
struct CandidatePlan {
  PlanPtr plan;
  double cost = 0;
  std::vector<std::string> offer_ids;  // remotes purchased by this plan
};

/// Statistics of one Assemble() call (reported by the experiments).
struct AssemblerStats {
  int blocks_created = 0;
  int joins_considered = 0;
  int unions_considered = 0;
};

class PlanAssembler {
 public:
  PlanAssembler(const sql::BoundQuery* query,
                const FederationSchema* federation,
                const PlanFactory* factory, AssemblerOptions options = {});

  /// Builds candidate plans from `offers`. Offers with unknown aliases or
  /// empty effective coverage are ignored. Returns an empty vector when
  /// no combination covers the query (the paper's abort condition for the
  /// first iteration). With tracing attached, each coverage-DP level
  /// emits dp_level[k]/dp_merge spans under `parent`.
  Result<std::vector<CandidatePlan>> Assemble(
      const std::vector<Offer>& offers, obs::Tracer* tracer = nullptr,
      obs::SpanRef parent = {});

  const AssemblerStats& stats() const { return stats_; }

  /// Number of feasible partitions of alias `i` (after pruning partitions
  /// contradicting the query's own predicates).
  int FeasiblePartitionCount(int alias_index) const;

 private:
  struct Rect {
    std::vector<uint32_t> masks;  // one per alias index, in query order
    double Cells(const std::vector<int>& alias_order) const;
  };

  struct Block {
    uint32_t alias_mask = 0;
    std::vector<Rect> rects;  // pairwise disjoint
    double covered_cells = 0;
    double total_cells = 0;   // cells of the feasible sub-box for alias_mask
    PlanPtr plan;
    double rows = 0;
    std::set<std::string> offer_ids;

    bool full() const { return covered_cells >= total_cells - 0.5; }
  };

  int AliasIndex(const std::string& alias) const;
  double BoxCells(uint32_t alias_mask) const;
  bool RectsDisjoint(const Rect& a, const Rect& b, uint32_t alias_mask) const;
  bool BlocksDisjoint(const Block& a, const Block& b) const;

  /// Offer -> seed block (clipped to the feasible box); nullopt when the
  /// offer covers nothing useful.
  std::optional<Block> SeedBlock(const Offer& offer) const;

  std::optional<Block> JoinBlocks(const Block& a, const Block& b,
                                  bool require_connected) const;
  Block UnionBlocks(const Block& a, const Block& b) const;

  /// When `b` overlaps `acc`, derives a disjoint under-approximation by
  /// restricting one alias dimension of `b` to the partitions `acc` does
  /// not touch, realized as a partition-restriction Filter on top of
  /// `b`'s plan. Requires the partitioning column in `b`'s schema (the
  /// offer generator ships it for partial-coverage offers); returns
  /// nullopt when no dimension yields new cells or the column is absent.
  std::optional<Block> ClipAgainst(const Block& acc, const Block& b) const;

  /// Applies projection/aggregation/distinct/order/limit compensation on
  /// a full core block.
  PlanPtr Compensate(PlanPtr input) const;

  /// Builds the re-aggregation plan over disjoint partial-aggregate
  /// offers; nullopt when they cannot cover the box.
  std::optional<CandidatePlan> AssemblePartialAggregates(
      const std::vector<const Offer*>& partials) const;

  /// Cheapest-per-cell cap at options_.max_blocks_per_subset.
  void PruneSubset(std::vector<Block>* list) const;

  /// Greedily grows a full-coverage block from list[start], buying the
  /// lowest marginal-cost-per-new-cell block (clipped when overlapping).
  Block GrowCover(const std::vector<Block>& list, size_t start,
                  AssemblerStats* stats) const;

  /// Union closure within one subset list (grow full blocks from the 4
  /// cheapest-per-cell partials), then PruneSubset.
  void CloseUnderUnion(std::vector<Block>* list, AssemblerStats* stats) const;

  /// One coverage-DP cell: the post-closure, post-prune block list for
  /// alias subset `s`, joined from strictly smaller subsets of `blocks`.
  /// Reads only levels below popcount(s), so every subset of one level
  /// can run concurrently; `stats` accumulates this cell's counters
  /// (summed at the merge barrier — integer sums are order-independent).
  std::vector<Block> ComputeCoverageSubset(
      uint32_t s, const std::map<uint32_t, std::vector<Block>>& blocks,
      AssemblerStats* stats) const;

  const sql::BoundQuery* query_;
  const FederationSchema* federation_;
  const PlanFactory* factory_;
  AssemblerOptions options_;

  std::vector<std::string> alias_order_;           // query alias per index
  std::map<std::string, int> alias_index_;
  std::vector<std::map<std::string, int>> partition_bit_;  // per alias
  std::vector<int> feasible_counts_;               // per alias
  AssemblerStats stats_;
};

}  // namespace qtrade

#endif  // QTRADE_OPT_PLAN_ASSEMBLER_H_
