// Seller-side offer generation: the paper's "partial query constructor and
// cost estimator" (§3.4) plus the "seller predicates analyser" (§3.5).
//
// Pipeline per request-for-bids:
//   1. Rewrite the asked query to the node's local partitions (§3.4).
//   2. Run the modified DP: the optimal 2-way, 3-way, ... partial results
//      are each turned into an offer, priced by the local optimizer with
//      accurate local statistics.
//   3. When the query aggregates and every aggregate is decomposable, add
//      a pushed-(partial-)aggregate offer; with complete local coverage
//      this is a final-answer offer.
//   4. Match local materialized views and offer cheap view-based answers.
#ifndef QTRADE_OPT_OFFER_GENERATOR_H_
#define QTRADE_OPT_OFFER_GENERATOR_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "opt/local_optimizer.h"
#include "opt/offer.h"
#include "plan/plan_factory.h"
#include "rewrite/partition_rewriter.h"
#include "util/status.h"

namespace qtrade {

class OfferCache;
struct OfferCacheStats;

struct OfferGeneratorOptions {
  /// Emit the §3.4 partial results (k-way sub-joins) as separate offers.
  bool offer_partial_results = true;
  /// Emit §3.5 materialized-view offers.
  bool use_views = true;
  /// Emit pushed-aggregate offers for decomposable aggregates.
  bool push_aggregates = true;
  /// Seller-side enumeration tuning ({0,0} = exact DP).
  IdpParams idp;
  /// Upper bound on offers returned per request.
  size_t max_offers = 48;
  /// Freshness attached to materialized-view offers (base-table answers
  /// are 1.0); buyers weighting staleness (§3.1) can then avoid views.
  double view_freshness = 0.9;
  /// Offer/cost memoization across rounds and repeated queries: number
  /// of (signature, coverage-mask) entries the seller keeps. 0 disables
  /// the cache, preserving uncached behavior bit-for-bit. The cached
  /// prices themselves are invariant either way — the cache only skips
  /// recomputation (see opt/offer_cache.h).
  size_t offer_cache_capacity = 0;
  /// Threads searching one level of the §3.4 subset DP (see
  /// QtOptions::dp_threads). <=1 = serial; higher fans levels out over
  /// the process-wide PlanSearchPool. Offers are byte-identical at every
  /// setting — parallelism only changes generation wall time.
  int dp_threads = 0;
};

/// Naming convention for partial-aggregate offer outputs: group keys keep
/// their column names; the i-th aggregate output becomes "agg<i>", except
/// AVG which splits into "agg<i>_sum" and "agg<i>_cnt". The buyer relies
/// on this to build its re-aggregation compensation.
std::string PartialAggName(size_t index);
std::string PartialAggSumName(size_t index);
std::string PartialAggCntName(size_t index);

/// True when every aggregate output of `query` can be recomputed from
/// per-fragment partial aggregates (SUM/COUNT/MIN/MAX/AVG, non-DISTINCT).
bool AggregatesDecomposable(const sql::BoundQuery& query);

/// One generated offer plus the seller-private execution recipe (never
/// sent over the wire): how to actually produce the promised rows later.
struct GeneratedOffer {
  Offer offer;
  /// Enumeration index this offer's id was minted with. Stable across
  /// the max_offers cap (which reorders), so a cache hit re-mints ids
  /// identical to what fresh generation would have assigned.
  int64_t seq = 0;
  /// Honest cost estimate (== offer.props.total_time_ms at generation;
  /// strategies may mark the wire copy up afterwards).
  double true_cost = 0;
  /// Hosted partitions each alias of `offer.query` scans.
  std::map<std::string, std::vector<std::string>> scan_partitions;
  /// For §3.5 view-based offers: run `view_compensation` over the
  /// materialized extent `view_name` instead of base tables.
  std::string view_name;
  sql::SelectStmt view_compensation;
};

class OfferGenerator {
 public:
  OfferGenerator(const NodeCatalog* catalog, const PlanFactory* factory,
                 OfferGeneratorOptions options = {});
  ~OfferGenerator();

  /// Produces this node's offers for the traded query. An empty vector
  /// means the node declines (no usable local data). With the offer
  /// cache enabled, a repeated (signature, coverage) request is answered
  /// from memoized pricing — offer ids are still minted fresh for this
  /// `rfb_id`, so the reply is byte-identical to regeneration. `parent`
  /// nests the generation spans (cache_lookup, rewrite, dp_enumerate)
  /// under the caller's span when tracing is attached.
  Result<std::vector<GeneratedOffer>> Generate(const sql::BoundQuery& query,
                                               const std::string& rfb_id,
                                               obs::SpanRef parent = {});

  /// Attaches tracing (generation-phase spans) and metrics (per-node
  /// cache hit/miss counters, offer_gen latency histogram); nulls
  /// detach. Instrument handles are resolved once here, never on the
  /// generation path.
  void SetObservability(obs::Tracer* tracer, obs::MetricsRegistry* metrics);

  /// Total offers generated so far (for experiment accounting; cache
  /// hits count too — they produce the same offers).
  int64_t offers_generated() const {
    return total_generated_.load(std::memory_order_relaxed);
  }

  /// Runtime resize of the memoization cache (0 = off).
  void set_cache_capacity(size_t capacity);
  size_t cache_capacity() const;
  /// Live entry count (introspection: cache occupancy).
  size_t cache_size() const;
  OfferCacheStats cache_stats() const;

  /// Runtime change of the DP search width (atomic: transport worker
  /// threads may be generating while a host re-configures).
  void set_dp_threads(int threads) {
    dp_threads_.store(threads, std::memory_order_relaxed);
  }
  int dp_threads() const {
    return dp_threads_.load(std::memory_order_relaxed);
  }

  /// Cumulative wall-clock spent inside Generate(), cache hits included
  /// (the seller-side offer-generation cost experiments measure).
  int64_t generate_ns() const {
    return generate_ns_.load(std::memory_order_relaxed);
  }

 private:
  /// Transport-safe offer id: "<node>:<rfb_id>#<seq>". Deterministic per
  /// (node, rfb) regardless of how many RFBs the generator is answering
  /// concurrently on transport worker threads.
  std::string OfferId(const std::string& rfb_id, int64_t seq);

  /// Prices shipping `rows` rows of `row_bytes` over the network and
  /// fills the full §3.1 property vector.
  QueryProperties MakeProps(double exec_cost_ms, double rows,
                            double row_bytes, double completeness) const;

  /// The uncached §3.4/§3.5 pipeline (rewrite, DP, views, cap).
  Result<std::vector<GeneratedOffer>> GenerateUncached(
      const sql::BoundQuery& query, const std::string& rfb_id, int64_t* seq,
      obs::SpanRef parent);

  const NodeCatalog* catalog_;
  const PlanFactory* factory_;
  OfferGeneratorOptions options_;
  std::atomic<int> dp_threads_{0};
  std::atomic<int64_t> total_generated_{0};
  std::atomic<int64_t> generate_ns_{0};
  std::unique_ptr<OfferCache> cache_;
  std::atomic<obs::Tracer*> tracer_{nullptr};
  /// Pre-resolved instruments (null when metrics are detached).
  std::atomic<obs::Counter*> m_cache_hits_{nullptr};
  std::atomic<obs::Counter*> m_cache_misses_{nullptr};
  std::atomic<obs::Histogram*> m_gen_us_{nullptr};
  std::atomic<obs::Histogram*> m_cache_lock_wait_us_{nullptr};
};

}  // namespace qtrade

#endif  // QTRADE_OPT_OFFER_GENERATOR_H_
