#include "opt/offer_generator.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <set>

#include "opt/offer_cache.h"
#include "opt/signature.h"
#include "rewrite/view_matcher.h"
#include "stats/selectivity.h"

namespace qtrade {

namespace {

using sql::BoundOutput;
using sql::BoundQuery;
using sql::ExprPtr;

/// Adds the scope's wall time to `sink` on exit (cache hits included).
class NsAccumulator {
 public:
  explicit NsAccumulator(std::atomic<int64_t>* sink)
      : sink_(sink), start_(std::chrono::steady_clock::now()) {}
  ~NsAccumulator() {
    sink_->fetch_add(std::chrono::duration_cast<std::chrono::nanoseconds>(
                         std::chrono::steady_clock::now() - start_)
                         .count(),
                     std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t>* sink_;
  std::chrono::steady_clock::time_point start_;
};

/// Fingerprint of which partitions of the query's tables the node hosts:
/// per table (sorted, distinct) a bitmask over partition indices, 64 per
/// hex word. Keys the offer cache alongside the query signature so a
/// placement change can never resurrect a stale entry.
std::string CoverageMaskKey(const BoundQuery& query,
                            const NodeCatalog& catalog) {
  std::set<std::string> tables;
  for (const auto& tref : query.tables) tables.insert(tref.table);
  std::string out;
  char buf[24];
  for (const auto& table : tables) {
    out += table;
    out += ':';
    const TablePartitioning* parts =
        catalog.federation().FindPartitioning(table);
    if (parts != nullptr) {
      const size_t n = parts->partitions.size();
      for (size_t base = 0; base < n; base += 64) {
        uint64_t word = 0;
        for (size_t i = base; i < n && i < base + 64; ++i) {
          if (catalog.HostsPartition(parts->partitions[i].id)) {
            word |= uint64_t{1} << (i - base);
          }
        }
        std::snprintf(buf, sizeof(buf), "%llx.",
                      static_cast<unsigned long long>(word));
        out += buf;
      }
    }
    out += ';';
  }
  return out;
}

/// Offer completeness = fraction of the asked extent covered, estimated as
/// the product over aliases of covered-partition fractions.
double CoverageCompleteness(const std::vector<OfferCoverage>& coverage,
                            const FederationSchema& federation) {
  double fraction = 1.0;
  for (const auto& cov : coverage) {
    const TablePartitioning* parts = federation.FindPartitioning(cov.table);
    if (parts == nullptr || parts->partitions.empty()) continue;
    fraction *= static_cast<double>(cov.partitions.size()) /
                static_cast<double>(parts->partitions.size());
  }
  return std::min(1.0, fraction);
}

}  // namespace

std::string PartialAggName(size_t index) {
  return "agg" + std::to_string(index);
}
std::string PartialAggSumName(size_t index) {
  return PartialAggName(index) + "_sum";
}
std::string PartialAggCntName(size_t index) {
  return PartialAggName(index) + "_cnt";
}

bool AggregatesDecomposable(const sql::BoundQuery& query) {
  if (!query.has_aggregates && query.group_by.empty()) return false;
  for (const auto& out : query.outputs) {
    if (!out.is_aggregate) continue;  // group key
    const sql::Expr& e = *out.expr;
    // Only plain `FUNC(arg)` (or the bare group column) shapes decompose.
    if (e.kind != sql::ExprKind::kAggregate) return false;
    if (e.distinct) return false;
    if (e.left != nullptr && e.left->kind != sql::ExprKind::kColumnRef) {
      return false;
    }
  }
  return true;
}

OfferGenerator::OfferGenerator(const NodeCatalog* catalog,
                               const PlanFactory* factory,
                               OfferGeneratorOptions options)
    : catalog_(catalog),
      factory_(factory),
      options_(options),
      dp_threads_(options.dp_threads),
      cache_(std::make_unique<OfferCache>(options.offer_cache_capacity)) {}

OfferGenerator::~OfferGenerator() = default;

void OfferGenerator::set_cache_capacity(size_t capacity) {
  cache_->set_capacity(capacity);
}

size_t OfferGenerator::cache_capacity() const { return cache_->capacity(); }

size_t OfferGenerator::cache_size() const { return cache_->size(); }

OfferCacheStats OfferGenerator::cache_stats() const { return cache_->stats(); }

std::string OfferGenerator::OfferId(const std::string& rfb_id,
                                    int64_t seq) {
  total_generated_.fetch_add(1, std::memory_order_relaxed);
  return catalog_->node_name() + ":" + rfb_id + "#" + std::to_string(seq);
}

QueryProperties OfferGenerator::MakeProps(double exec_cost_ms, double rows,
                                          double row_bytes,
                                          double completeness) const {
  const CostModel& cost = factory_->cost_model();
  QueryProperties props;
  props.total_time_ms = exec_cost_ms + cost.TransferCost(rows, row_bytes);
  props.first_row_ms =
      cost.params().net_latency_ms + 0.05 * exec_cost_ms;
  props.rows = rows;
  props.rows_per_sec =
      props.total_time_ms > 0 ? rows / (props.total_time_ms / 1000.0) : 0;
  props.freshness = 1.0;  // live data; view offers override
  props.completeness = completeness;
  return props;
}

void OfferGenerator::SetObservability(obs::Tracer* tracer,
                                      obs::MetricsRegistry* metrics) {
  tracer_.store(tracer, std::memory_order_relaxed);
  const std::string& node = catalog_->node_name();
  m_cache_hits_.store(
      metrics ? metrics->counter("seller." + node + ".cache_hits") : nullptr,
      std::memory_order_relaxed);
  m_cache_misses_.store(
      metrics ? metrics->counter("seller." + node + ".cache_misses")
              : nullptr,
      std::memory_order_relaxed);
  m_gen_us_.store(
      metrics ? metrics->histogram("seller." + node + ".offer_gen_us")
              : nullptr,
      std::memory_order_relaxed);
  m_cache_lock_wait_us_.store(
      metrics ? metrics->histogram("seller." + node + ".cache_lock_wait_us")
              : nullptr,
      std::memory_order_relaxed);
}

Result<std::vector<GeneratedOffer>> OfferGenerator::Generate(
    const sql::BoundQuery& query, const std::string& rfb_id,
    obs::SpanRef parent) {
  NsAccumulator timer(&generate_ns_);
  const auto wall_start = std::chrono::steady_clock::now();
  auto observe_gen_us = [&] {
    if (obs::Histogram* h = m_gen_us_.load(std::memory_order_relaxed)) {
      h->Observe(std::chrono::duration_cast<std::chrono::microseconds>(
                     std::chrono::steady_clock::now() - wall_start)
                     .count());
    }
  };
  if (cache_->capacity() == 0) {
    if (obs::Counter* c = m_cache_misses_.load(std::memory_order_relaxed)) {
      c->Increment();
    }
    int64_t seq = 0;
    auto result = GenerateUncached(query, rfb_id, &seq, parent);
    observe_gen_us();
    return result;
  }
  const QuerySignature sig = CanonicalSignature(query);
  const std::string key = sig.text + "|" + CoverageMaskKey(query, *catalog_);
  const uint64_t epoch = catalog_->stats_epoch();
  std::optional<std::vector<GeneratedOffer>> cached;
  int64_t lock_wait_ns = 0;
  {
    obs::Tracer* tracer = tracer_.load(std::memory_order_relaxed);
    obs::Span lookup = obs::Tracer::Active(tracer)
                           ? tracer->StartSpan("cache_lookup", parent)
                           : obs::Span();
    lookup.Node(catalog_->node_name());
    cached = cache_->Lookup(key, sig, epoch, &lock_wait_ns);
    lookup.Attr("hit", static_cast<int64_t>(cached.has_value() ? 1 : 0));
    if (lock_wait_ns > 0) {
      // Contended shared cache: another negotiation held the mutex.
      lookup.Attr("lock_wait_us", lock_wait_ns / 1000);
    }
  }
  auto observe_lock_wait = [&] {
    if (lock_wait_ns <= 0) return;
    if (obs::Histogram* h =
            m_cache_lock_wait_us_.load(std::memory_order_relaxed)) {
      h->Observe(lock_wait_ns / 1000);
    }
  };
  if (cached.has_value()) {
    if (obs::Counter* c = m_cache_hits_.load(std::memory_order_relaxed)) {
      c->Increment();
    }
    // Memoized pricing, fresh identity: ids are minted for THIS rfb with
    // each offer's original enumeration index, so the reply is
    // byte-identical to what regeneration would produce.
    for (GeneratedOffer& g : *cached) {
      g.offer.offer_id = OfferId(rfb_id, g.seq);
      g.offer.seller = catalog_->node_name();
      g.offer.rfb_id = rfb_id;
    }
    observe_lock_wait();
    observe_gen_us();
    return std::move(*cached);
  }
  if (obs::Counter* c = m_cache_misses_.load(std::memory_order_relaxed)) {
    c->Increment();
  }
  int64_t seq = 0;
  QTRADE_ASSIGN_OR_RETURN(std::vector<GeneratedOffer> offers,
                          GenerateUncached(query, rfb_id, &seq, parent));
  cache_->Insert(key, sig, epoch, offers, &lock_wait_ns);
  observe_lock_wait();
  observe_gen_us();
  return offers;
}

Result<std::vector<GeneratedOffer>> OfferGenerator::GenerateUncached(
    const sql::BoundQuery& query, const std::string& rfb_id, int64_t* seq_io,
    obs::SpanRef parent) {
  std::vector<GeneratedOffer> offers;
  // Offer ids embed the rfb id plus an enumeration index, so they are
  // deterministic and unique even when one generator serves several RFBs
  // concurrently (transport worker threads).
  int64_t& seq = *seq_io;
  obs::Tracer* tracer = tracer_.load(std::memory_order_relaxed);

  std::optional<LocalRewrite> rewrite;
  {
    obs::Span span = obs::Tracer::Active(tracer)
                         ? tracer->StartSpan("rewrite", parent)
                         : obs::Span();
    span.Node(catalog_->node_name());
    QTRADE_ASSIGN_OR_RETURN(rewrite,
                            RewriteForLocalPartitions(query, *catalog_));
    span.Attr("kept_aliases",
              static_cast<int64_t>(
                  rewrite.has_value() ? rewrite->core.tables.size() : 0));
  }
  if (rewrite.has_value()) {
    const LocalRewrite& lr = *rewrite;
    const BoundQuery& core = lr.core;

    // Enumeration inputs: one per kept alias.
    std::vector<AliasInput> inputs;
    for (const auto& table_ref : core.tables) {
      const AliasCoverage* cov = lr.FindCoverage(table_ref.alias);
      AliasInput input;
      input.alias = table_ref.alias;
      input.table = table_ref.table;
      const TableDef* def = catalog_->FindTable(table_ref.table);
      input.schema = QualifiedSchema(*def, table_ref.alias);
      input.partitions = cov->scanned_partitions;
      std::optional<TableStats> stats;
      for (const auto& pid : cov->scanned_partitions) {
        const TableStats* part = catalog_->PartitionStats(pid);
        if (part == nullptr) continue;
        stats = stats.has_value() ? TableStats::MergeDisjoint(*stats, *part)
                                  : *part;
      }
      input.stats = stats.value_or(TableStats{});
      inputs.push_back(std::move(input));
    }

    LocalOptimizer optimizer(&core, std::move(inputs), factory_,
                             options_.idp);
    {
      obs::Span span = obs::Tracer::Active(tracer)
                           ? tracer->StartSpan("dp_enumerate", parent)
                           : obs::Span();
      span.Node(catalog_->node_name());
      DpSearchOptions search;
      search.threads = dp_threads_.load(std::memory_order_relaxed);
      search.tracer = tracer;
      search.parent = span.ref();
      optimizer.set_search(search);
      QTRADE_RETURN_IF_ERROR(optimizer.Run());
      span.Attr("inputs", static_cast<int64_t>(optimizer.num_inputs()));
      span.Attr("subplans", static_cast<int64_t>(optimizer.subplans().size()));
      span.Attr("dp_threads", static_cast<int64_t>(search.threads));
    }

    // --- §3.4: one offer per optimal partial result.
    for (const auto& [mask, sub] : optimizer.subplans()) {
      int size = __builtin_popcount(mask);
      if (!options_.offer_partial_results &&
          size != static_cast<int>(optimizer.num_inputs())) {
        continue;
      }
      // Aliases of this subset.
      std::set<std::string> subset_aliases;
      for (size_t i = 0; i < optimizer.num_inputs(); ++i) {
        if ((mask >> i) & 1u) subset_aliases.insert(optimizer.input(i).alias);
      }

      // Offered statement: needed outputs restricted to the subset, plus
      // the subset-side columns of predicates crossing the subset border.
      std::set<std::pair<std::string, std::string>> needed;
      for (const auto& out : core.outputs) {
        if (subset_aliases.count(out.expr->qualifier) > 0) {
          needed.insert({out.expr->qualifier, out.expr->column});
        }
      }
      // When an alias's coverage is partial, ship its partitioning
      // columns too: the buyer can then clip overlapping offers with a
      // partition-restriction filter instead of discarding them.
      for (const auto& cov : lr.coverage) {
        if (subset_aliases.count(cov.alias) == 0 || cov.complete) continue;
        const TablePartitioning* partitioning =
            catalog_->federation().FindPartitioning(cov.table);
        if (partitioning == nullptr) continue;
        for (const auto& part : partitioning->partitions) {
          sql::ForEachColumnRef(
              part.predicate, [&](const sql::Expr& ref) {
                needed.insert({cov.alias, ref.column});
              });
        }
      }
      std::vector<ExprPtr> where;
      for (const auto& conj : core.conjuncts) {
        bool all_in = true, any_in = false;
        for (const auto& a : conj.aliases) {
          if (subset_aliases.count(a) > 0) {
            any_in = true;
          } else {
            all_in = false;
          }
        }
        if (all_in) {
          where.push_back(conj.expr);
        } else if (any_in) {
          sql::ForEachColumnRef(conj.expr, [&](const sql::Expr& ref) {
            if (subset_aliases.count(ref.qualifier) > 0) {
              needed.insert({ref.qualifier, ref.column});
            }
          });
        }
      }

      Offer offer;
      const int64_t offer_seq = seq++;
      offer.offer_id = OfferId(rfb_id, offer_seq);
      offer.seller = catalog_->node_name();
      offer.rfb_id = rfb_id;
      offer.kind = OfferKind::kCoreRows;
      sql::SelectStmt stmt;
      for (const auto& [alias, column] : needed) {
        sql::SelectItem item;
        item.expr = sql::Col(alias, column);
        stmt.items.push_back(std::move(item));
        const sql::TableRef* tref = core.FindTable(alias);
        const TableDef* def = catalog_->FindTable(tref->table);
        auto idx = def->FindColumn(column);
        offer.schema.AddColumn(
            {alias, column, def->columns[idx.value()].type});
      }
      if (stmt.items.empty()) {
        // Pure existence subset (e.g. COUNT(*) core): ship first column.
        const std::string& alias = *subset_aliases.begin();
        const sql::TableRef* tref = core.FindTable(alias);
        const TableDef* def = catalog_->FindTable(tref->table);
        sql::SelectItem item;
        item.expr = sql::Col(alias, def->columns.front().name);
        stmt.items.push_back(std::move(item));
        offer.schema.AddColumn(
            {alias, def->columns.front().name, def->columns.front().type});
      }
      for (const auto& tref : core.tables) {
        if (subset_aliases.count(tref.alias) > 0) stmt.from.push_back(tref);
      }
      stmt.where = sql::AndAll(where);
      offer.query = std::move(stmt);
      for (const auto& cov : lr.coverage) {
        if (subset_aliases.count(cov.alias) > 0) {
          offer.coverage.push_back(
              {cov.alias, cov.table, cov.covered_partitions});
        }
      }
      offer.row_bytes = EstimateRowBytes(offer.schema);
      offer.props = MakeProps(
          sub.plan->cost, sub.rows, offer.row_bytes,
          CoverageCompleteness(offer.coverage, catalog_->federation()));
      GeneratedOffer generated;
      generated.seq = offer_seq;
      generated.true_cost = offer.props.total_time_ms;
      for (const auto& cov : lr.coverage) {
        if (subset_aliases.count(cov.alias) > 0) {
          generated.scan_partitions[cov.alias] = cov.scanned_partitions;
        }
      }
      generated.offer = std::move(offer);
      offers.push_back(std::move(generated));
    }

    // --- Pushed (partial) aggregates over the full kept set.
    const bool query_aggregated =
        query.has_aggregates || !query.group_by.empty();
    if (options_.push_aggregates && query_aggregated &&
        lr.all_tables_kept && AggregatesDecomposable(query)) {
      auto full_plan = optimizer.BestFullPlan();
      auto full_rows = optimizer.FullRows();
      if (full_plan.ok() && full_rows.ok()) {
        bool coverage_complete = std::all_of(
            lr.coverage.begin(), lr.coverage.end(),
            [](const AliasCoverage& c) { return c.complete; });

        Offer offer;
        const int64_t offer_seq = seq++;
        offer.offer_id = OfferId(rfb_id, offer_seq);
        offer.seller = catalog_->node_name();
        offer.rfb_id = rfb_id;
        for (const auto& cov : lr.coverage) {
          offer.coverage.push_back(
              {cov.alias, cov.table, cov.covered_partitions});
        }

        sql::SelectStmt stmt;
        for (const auto& tref : core.tables) stmt.from.push_back(tref);
        std::vector<ExprPtr> where;
        for (const auto& conj : core.conjuncts) where.push_back(conj.expr);
        stmt.where = sql::AndAll(where);
        for (const auto& g : query.group_by) {
          stmt.group_by.push_back(sql::Col(g.alias, g.column));
        }

        double group_rows = 1;
        if (!query.group_by.empty()) {
          // Groups bounded by join output and by group-key NDV product.
          double ndv_product = 1;
          for (const auto& g : query.group_by) {
            auto idx = optimizer.AliasIndex(g.alias);
            const ColumnStats* col =
                idx.has_value()
                    ? optimizer.input(*idx).stats.FindColumn(g.column)
                    : nullptr;
            ndv_product *= col != nullptr && col->ndv > 0 ? col->ndv : 10;
          }
          group_rows = std::min(*full_rows, ndv_product);
          group_rows = std::max(1.0, group_rows);
        }

        if (coverage_complete) {
          // Exact final answer: deliver the query as asked.
          offer.kind = OfferKind::kFinalAnswer;
          sql::SelectStmt final_stmt = query.ToStmt();
          // Restrict FROM/WHERE to the core's (identical) table set but
          // keep the original outputs/having/order.
          offer.query = std::move(final_stmt);
          offer.schema = query.OutputSchema();
          double exec = (*full_plan)->cost +
                        factory_->cost_model().AggregateCost(*full_rows,
                                                             group_rows);
          if (!query.order_by.empty()) {
            exec += factory_->cost_model().SortCost(group_rows);
          }
          offer.row_bytes = EstimateRowBytes(offer.schema);
          offer.props =
              MakeProps(exec, group_rows, offer.row_bytes, 1.0);
        } else {
          // Partial aggregate: group keys + decomposed aggregates.
          offer.kind = OfferKind::kPartialAggregate;
          size_t agg_index = 0;
          for (const auto& out : query.outputs) {
            if (!out.is_aggregate) {
              sql::SelectItem item;
              item.expr = out.expr;
              item.alias = out.name;
              stmt.items.push_back(std::move(item));
              offer.schema.AddColumn({"", out.name, out.type});
              continue;
            }
            const sql::Expr& agg = *out.expr;
            if (agg.agg == sql::AggFunc::kAvg) {
              sql::SelectItem sum_item;
              sum_item.expr = sql::Agg(sql::AggFunc::kSum, agg.left);
              sum_item.alias = PartialAggSumName(agg_index);
              stmt.items.push_back(std::move(sum_item));
              offer.schema.AddColumn(
                  {"", PartialAggSumName(agg_index), TypeKind::kDouble});
              sql::SelectItem cnt_item;
              cnt_item.expr = sql::CountStar();
              cnt_item.alias = PartialAggCntName(agg_index);
              stmt.items.push_back(std::move(cnt_item));
              offer.schema.AddColumn(
                  {"", PartialAggCntName(agg_index), TypeKind::kInt64});
            } else {
              sql::SelectItem item;
              item.expr = out.expr;
              item.alias = PartialAggName(agg_index);
              stmt.items.push_back(std::move(item));
              offer.schema.AddColumn(
                  {"", PartialAggName(agg_index), out.type});
            }
            ++agg_index;
          }
          offer.query = std::move(stmt);
          double exec = (*full_plan)->cost +
                        factory_->cost_model().AggregateCost(*full_rows,
                                                             group_rows);
          offer.row_bytes = EstimateRowBytes(offer.schema);
          offer.props = MakeProps(
              exec, group_rows, offer.row_bytes,
              CoverageCompleteness(offer.coverage, catalog_->federation()));
        }
        GeneratedOffer generated;
        generated.seq = offer_seq;
        generated.true_cost = offer.props.total_time_ms;
        for (const auto& cov : lr.coverage) {
          generated.scan_partitions[cov.alias] = cov.scanned_partitions;
        }
        generated.offer = std::move(offer);
        offers.push_back(std::move(generated));
      }
    }
  }

  // --- §3.5: materialized-view offers.
  if (options_.use_views) {
    for (const ViewMatch& match : MatchViews(query, *catalog_)) {
      const MaterializedViewDef& view = *match.view;
      // Only complete-coverage views yield final answers here.
      bool complete = true;
      std::vector<OfferCoverage> coverage;
      for (const auto& tref : query.tables) {
        OfferCoverage cov;
        cov.alias = tref.alias;
        cov.table = tref.table;
        const TablePartitioning* parts =
            catalog_->federation().FindPartitioning(tref.table);
        auto it = view.coverage.find(tref.table);
        if (it == view.coverage.end() || it->second.empty()) {
          for (const auto& p : parts->partitions) {
            cov.partitions.push_back(p.id);
          }
        } else {
          cov.partitions.assign(it->second.begin(), it->second.end());
          if (cov.partitions.size() < parts->partitions.size()) {
            complete = false;
          }
        }
        coverage.push_back(std::move(cov));
      }
      if (!complete) continue;

      Offer offer;
      const int64_t offer_seq = seq++;
      offer.offer_id = OfferId(rfb_id, offer_seq);
      offer.seller = catalog_->node_name();
      offer.rfb_id = rfb_id;
      offer.kind = OfferKind::kFinalAnswer;
      offer.query = query.ToStmt();  // delivered answer == asked query
      offer.schema = query.OutputSchema();
      offer.coverage = std::move(coverage);
      offer.row_bytes = EstimateRowBytes(offer.schema);

      // Price from view statistics: scan extent + residual + optional
      // re-aggregation, then transfer.
      const CostModel& cost = factory_->cost_model();
      double view_rows = std::max<int64_t>(1, view.stats.row_count);
      double sel = 1.0;
      if (match.compensation.where) {
        sel = EstimateSelectivity(match.compensation.where, view.stats);
      }
      double scanned = view_rows;
      double result_rows = std::max(1.0, view_rows * sel);
      double exec =
          cost.ScanCost(scanned, std::max(16.0, view.stats.avg_row_bytes),
                        match.compensation.where ? 1 : 0);
      if (match.reaggregates) {
        double groups = std::max(1.0, result_rows / 2);
        exec += cost.AggregateCost(result_rows, groups);
        result_rows = groups;
      }
      if (!match.compensation.order_by.empty()) {
        exec += cost.SortCost(result_rows);
      }
      offer.props = MakeProps(exec, result_rows, offer.row_bytes, 1.0);
      offer.props.freshness = options_.view_freshness;
      GeneratedOffer generated;
      generated.seq = offer_seq;
      generated.true_cost = offer.props.total_time_ms;
      generated.view_name = view.name;
      generated.view_compensation = match.compensation;
      generated.offer = std::move(offer);
      offers.push_back(std::move(generated));
    }
  }

  // Cap: prefer larger subsets first (they subsume smaller ones), then
  // cheaper offers.
  if (offers.size() > options_.max_offers) {
    std::stable_sort(
        offers.begin(), offers.end(),
        [](const GeneratedOffer& a, const GeneratedOffer& b) {
          if (a.offer.coverage.size() != b.offer.coverage.size()) {
            return a.offer.coverage.size() > b.offer.coverage.size();
          }
          return a.offer.props.total_time_ms < b.offer.props.total_time_ms;
        });
    offers.resize(options_.max_offers);
  }
  return offers;
}

}  // namespace qtrade
