// Canonical query signatures (offer memoization, cf. multi-query
// optimization's shared common subexpressions): a normal form for
// BoundQuery under which syntactically different but semantically
// identical RFB subqueries — alias renamings, permuted WHERE conjuncts,
// flipped comparisons, reordered IN-lists — serialize to the same string
// and therefore hash equal as cache keys.
//
// Normalization scheme:
//  * Table refs are sorted by (table, alias) and alias-renamed to
//    positional ids t0, t1, ...; every expression is serialized with the
//    positional ids substituted for the original aliases.
//  * WHERE conjuncts are individually canonicalized (symmetric operators
//    order their operands, comparisons are flipped so the lesser operand
//    serialization comes first, AND/OR chains are flattened and sorted,
//    IN-list values are sorted) and then sorted as strings.
//  * The output list keeps its order (column order is part of the
//    delivered schema) but is rendered canonically; GROUP BY is sorted,
//    ORDER BY keeps order, DISTINCT/LIMIT are appended.
//  * Literals carry a type tag so 5 and 5.0 and '5' stay distinct.
//
// Self-join caveat: two aliases over the same table sort by their
// original alias names, so a pure alias swap of a self-join may produce
// a different signature. That is a safe false negative (a cache miss),
// never a false positive: equal signatures imply the queries are
// identical up to alias naming.
#ifndef QTRADE_OPT_SIGNATURE_H_
#define QTRADE_OPT_SIGNATURE_H_

#include <map>
#include <string>
#include <vector>

#include "sql/analyzer.h"
#include "sql/ast.h"

namespace qtrade {

/// A query's canonical serialization plus the alias order behind the
/// positional ids (aliases[i] is what "t<i>" stands for).
struct QuerySignature {
  std::string text;
  std::vector<std::string> aliases;

  bool operator==(const QuerySignature& o) const { return text == o.text; }
};

/// Computes the canonical signature of a bound query.
QuerySignature CanonicalSignature(const sql::BoundQuery& query);

/// A query's canonical serialization with the WHERE conjuncts factored
/// out: `skeleton` is the signature text with an empty W[] section and
/// `conjuncts` holds the individually canonicalized conjunct strings,
/// sorted. Two queries with equal skeletons differ only in their
/// conjunct sets, which makes conjunctive-query containment decidable
/// by set inclusion (see ShapeContains) — the lattice the arbitrage-free
/// pricing strategies walk (trading/strategy.h).
struct QueryShape {
  std::string skeleton;
  std::vector<std::string> conjuncts;  // sorted
  /// Positional alias order, as in QuerySignature: aliases[i] is what
  /// "t<i>" stands for inside skeleton/conjuncts.
  std::vector<std::string> aliases;

  bool operator==(const QueryShape& o) const {
    return skeleton == o.skeleton && conjuncts == o.conjuncts;
  }
};

/// Decomposes a bound query for containment checks. Concatenating the
/// skeleton's W[] section with the sorted conjuncts reproduces
/// CanonicalSignature(query).text exactly.
QueryShape CanonicalShape(const sql::BoundQuery& query);

/// Conservative conjunctive-query containment on canonical shapes:
/// true only when every answer row of `sub` is guaranteed to be an
/// answer row of `super` — equal skeletons (same tables, outputs,
/// grouping, ordering, limit) and sub's conjunct set a superset of
/// super's (more predicates = more restrictive). False negatives are
/// possible (semantic containment the syntax hides); false positives
/// are not.
bool ShapeContains(const QueryShape& super, const QueryShape& sub);

/// Positional alias rename between two queries with equal signature
/// text: from.aliases[i] -> to.aliases[i]. Identical entries are
/// omitted, so an empty map means "no renaming needed".
std::map<std::string, std::string> AliasRenameMap(const QuerySignature& from,
                                                  const QuerySignature& to);

/// Rewrites every column-ref qualifier of `expr` through `renames`
/// (aliases absent from the map are kept). Shares unchanged subtrees.
sql::ExprPtr RenameAliases(const sql::ExprPtr& expr,
                           const std::map<std::string, std::string>& renames);

/// Rewrites a whole SELECT statement (FROM aliases plus every embedded
/// expression) through `renames`.
sql::SelectStmt RenameAliases(const sql::SelectStmt& stmt,
                              const std::map<std::string, std::string>& renames);

}  // namespace qtrade

#endif  // QTRADE_OPT_SIGNATURE_H_
