// Shared, bounded worker pool for parallel plan-space search.
//
// Both DP lattices — the seller's §3.4 subset DP (LocalOptimizer) and the
// buyer's §3.6 coverage DP (PlanAssembler) — are level-synchronous: every
// subset of popcount k depends only on strictly smaller subsets, so one
// level fans out across workers and merges at a barrier before the next
// level starts (the shared-nothing parallelization of Trummer & Koch,
// see PAPERS.md). This pool is the process-wide execution substrate for
// those fan-outs:
//
//  - One pool per process (Shared()). NodeServer reactor workers that
//    each run a negotiation's DP draw helpers from the same pool instead
//    of spawning dp_threads of their own, so the total number of search
//    threads stays bounded no matter how many negotiations are in
//    flight.
//  - The caller always participates. ParallelFor() executes tasks on the
//    calling thread too, so a saturated (or empty) pool degrades to
//    serial execution instead of deadlocking, and dp_threads=1 runs the
//    sharded code path with zero helper threads.
//  - Determinism is the caller's contract: tasks write into disjoint,
//    index-addressed result slots and the caller merges them in index
//    order after ParallelFor returns. Results therefore never depend on
//    which thread executed which task (see DESIGN.md "Parallel plan
//    search").
#ifndef QTRADE_OPT_PARALLEL_SEARCH_POOL_H_
#define QTRADE_OPT_PARALLEL_SEARCH_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace qtrade {

class PlanSearchPool {
 public:
  struct Stats {
    /// Helper threads currently alive (grow-only; see EnsureWorkers).
    int workers = 0;
    /// ParallelFor calls that enqueued work for helpers.
    int64_t parallel_runs = 0;
    /// Tasks executed by helper threads (caller-executed tasks excluded).
    int64_t helper_tasks = 0;
    /// High-water mark of fan-outs queued simultaneously: >1 means
    /// concurrent negotiations contended for the same helpers.
    int64_t max_queue_depth = 0;
  };

  PlanSearchPool() = default;
  ~PlanSearchPool();
  PlanSearchPool(const PlanSearchPool&) = delete;
  PlanSearchPool& operator=(const PlanSearchPool&) = delete;

  /// The process-wide pool every negotiation shares. Never destroyed
  /// (worker threads must not be joined during static teardown).
  static PlanSearchPool* Shared();

  /// Grows the pool to at least `workers` helper threads (capped at
  /// kMaxWorkers). Never shrinks: the pool serves the largest width any
  /// concurrent negotiation asked for.
  void EnsureWorkers(int workers);

  /// Executes fn(i) for every i in [0, tasks), distributing tasks over
  /// the calling thread plus at most `max_threads - 1` pool helpers.
  /// Returns when every task has finished. Tasks are claimed dynamically
  /// (one atomic increment each), so uneven per-task work load-balances.
  /// fn must be safe to invoke concurrently from distinct threads for
  /// distinct i.
  void ParallelFor(int tasks, int max_threads,
                   const std::function<void(int)>& fn);

  Stats stats() const;
  int workers() const;

 private:
  /// Hard cap on helper threads, far above any sane dp_threads request;
  /// a guard against misconfiguration, not a tuning knob.
  static constexpr int kMaxWorkers = 64;

  /// One in-flight ParallelFor. Stack-allocated by the caller; helpers
  /// only ever reach it through queue_, and the caller does not return
  /// until every helper that picked it up has dropped it again.
  struct Job {
    const std::function<void(int)>* fn = nullptr;
    int tasks = 0;
    int max_helpers = 0;
    std::atomic<int> next{0};       // next unclaimed task index
    std::atomic<int> completed{0};  // tasks finished (any thread)
    int active_helpers = 0;         // guarded by mu_
  };

  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // helpers wait for queued jobs
  std::condition_variable done_cv_;  // callers wait for helpers to drain
  std::vector<std::thread> workers_;
  std::vector<Job*> queue_;  // jobs that still accept helpers
  bool shutdown_ = false;
  int64_t parallel_runs_ = 0;
  int64_t helper_tasks_ = 0;
  int64_t max_queue_depth_ = 0;
};

}  // namespace qtrade

#endif  // QTRADE_OPT_PARALLEL_SEARCH_POOL_H_
