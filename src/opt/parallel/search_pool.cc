#include "opt/parallel/search_pool.h"

#include <algorithm>

namespace qtrade {

PlanSearchPool* PlanSearchPool::Shared() {
  // Intentionally leaked: joining helper threads during static teardown
  // would deadlock against any late ParallelFor still draining.
  static PlanSearchPool* pool = new PlanSearchPool();
  return pool;
}

PlanSearchPool::~PlanSearchPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void PlanSearchPool::EnsureWorkers(int workers) {
  workers = std::min(workers, kMaxWorkers);
  std::lock_guard<std::mutex> lock(mu_);
  while (static_cast<int>(workers_.size()) < workers && !shutdown_) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

int PlanSearchPool::workers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(workers_.size());
}

PlanSearchPool::Stats PlanSearchPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.workers = static_cast<int>(workers_.size());
  s.parallel_runs = parallel_runs_;
  s.helper_tasks = helper_tasks_;
  s.max_queue_depth = max_queue_depth_;
  return s;
}

void PlanSearchPool::ParallelFor(int tasks, int max_threads,
                                 const std::function<void(int)>& fn) {
  if (tasks <= 0) return;
  Job job;
  job.fn = &fn;
  job.tasks = tasks;
  job.max_helpers =
      std::max(0, std::min(max_threads - 1, tasks - 1));

  bool queued = false;
  if (job.max_helpers > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!workers_.empty()) {
      queue_.push_back(&job);
      ++parallel_runs_;
      max_queue_depth_ =
          std::max(max_queue_depth_, static_cast<int64_t>(queue_.size()));
      queued = true;
    }
  }
  if (queued) work_cv_.notify_all();

  // The caller is always one of the run's threads: with no helpers
  // available this loop IS the serial path, and with helpers it
  // guarantees forward progress even when every pool thread is busy on
  // other negotiations.
  for (int i = job.next.fetch_add(1, std::memory_order_relaxed);
       i < tasks; i = job.next.fetch_add(1, std::memory_order_relaxed)) {
    (*job.fn)(i);
    job.completed.fetch_add(1, std::memory_order_release);
  }

  std::unique_lock<std::mutex> lock(mu_);
  if (queued) {
    // Stop new helpers from adopting the job; ones already on it are
    // drained by the wait below (they drop active_helpers under mu_
    // after their last task, so their writes happen-before our return).
    queue_.erase(std::remove(queue_.begin(), queue_.end(), &job),
                 queue_.end());
  }
  done_cv_.wait(lock, [&] {
    return job.active_helpers == 0 &&
           job.completed.load(std::memory_order_acquire) >= tasks;
  });
}

void PlanSearchPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] { return shutdown_ || !queue_.empty(); });
    if (shutdown_) return;
    Job* job = queue_.front();
    ++job->active_helpers;
    if (job->active_helpers >= job->max_helpers) {
      // Enough threads on this fan-out; leave the queue slot to others.
      queue_.erase(std::remove(queue_.begin(), queue_.end(), job),
                   queue_.end());
    }
    lock.unlock();

    int executed = 0;
    for (int i = job->next.fetch_add(1, std::memory_order_relaxed);
         i < job->tasks;
         i = job->next.fetch_add(1, std::memory_order_relaxed)) {
      (*job->fn)(i);
      job->completed.fetch_add(1, std::memory_order_release);
      ++executed;
    }

    lock.lock();
    helper_tasks_ += executed;
    --job->active_helpers;
    // `job` may be destroyed the moment the caller's wait predicate
    // passes; no touching it after this notify.
    done_cv_.notify_all();
  }
}

}  // namespace qtrade
