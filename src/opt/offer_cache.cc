#include "opt/offer_cache.h"

#include <chrono>

namespace qtrade {

GeneratedOffer RenameGeneratedOffer(
    const GeneratedOffer& offer,
    const std::map<std::string, std::string>& renames) {
  GeneratedOffer out = offer;
  if (renames.empty()) return out;
  out.offer.query = RenameAliases(offer.offer.query, renames);
  TupleSchema schema;
  for (const auto& col : offer.offer.schema.columns()) {
    auto it = renames.find(col.qualifier);
    schema.AddColumn({it != renames.end() ? it->second : col.qualifier,
                      col.name, col.type});
  }
  out.offer.schema = std::move(schema);
  for (auto& cov : out.offer.coverage) {
    auto it = renames.find(cov.alias);
    if (it != renames.end()) cov.alias = it->second;
  }
  std::map<std::string, std::vector<std::string>> scans;
  for (const auto& [alias, partitions] : offer.scan_partitions) {
    auto it = renames.find(alias);
    scans[it != renames.end() ? it->second : alias] = partitions;
  }
  out.scan_partitions = std::move(scans);
  out.view_compensation = RenameAliases(offer.view_compensation, renames);
  return out;
}

void OfferCache::set_capacity(size_t capacity) {
  capacity_.store(capacity, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  TrimLocked();
}

std::unique_lock<std::mutex> OfferCache::AcquireTimed(
    int64_t* lock_wait_ns) const {
  std::unique_lock<std::mutex> lock(mu_, std::try_to_lock);
  if (!lock.owns_lock()) {
    // Contended: another negotiation holds the shared cache. Measure the
    // wait so the tracer can render lock-contention spans per caller.
    const auto t0 = std::chrono::steady_clock::now();
    lock.lock();
    const int64_t waited =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count();
    lock_waits_.fetch_add(1, std::memory_order_relaxed);
    lock_wait_ns_.fetch_add(waited, std::memory_order_relaxed);
    if (lock_wait_ns != nullptr) *lock_wait_ns += waited;
  }
  return lock;
}

std::optional<std::vector<GeneratedOffer>> OfferCache::Lookup(
    const std::string& key, const QuerySignature& sig, uint64_t epoch,
    int64_t* lock_wait_ns) {
  if (capacity() == 0) return std::nullopt;
  std::unique_lock<std::mutex> lock = AcquireTimed(lock_wait_ns);
  auto it = index_.find(key);
  if (it == index_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  if (it->second->epoch != epoch) {
    // Statistics changed since this price was computed: stale, discard.
    lru_.erase(it->second);
    index_.erase(it);
    invalidations_.fetch_add(1, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // touch
  const Entry& entry = *it->second;
  hits_.fetch_add(1, std::memory_order_relaxed);
  std::map<std::string, std::string> renames =
      AliasRenameMap(entry.sig, sig);
  std::vector<GeneratedOffer> out;
  out.reserve(entry.offers.size());
  for (const auto& offer : entry.offers) {
    out.push_back(RenameGeneratedOffer(offer, renames));
  }
  return out;
}

void OfferCache::Insert(const std::string& key, const QuerySignature& sig,
                        uint64_t epoch,
                        const std::vector<GeneratedOffer>& offers,
                        int64_t* lock_wait_ns) {
  if (capacity() == 0) return;
  std::unique_lock<std::mutex> lock = AcquireTimed(lock_wait_ns);
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Concurrent generators raced on the same miss: refresh in place.
    it->second->epoch = epoch;
    it->second->sig = sig;
    it->second->offers = offers;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, sig, epoch, offers});
  index_[key] = lru_.begin();
  TrimLocked();
}

void OfferCache::TrimLocked() {
  const size_t cap = capacity();
  while (lru_.size() > cap) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

OfferCacheStats OfferCache::stats() const {
  OfferCacheStats out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.evictions = evictions_.load(std::memory_order_relaxed);
  out.invalidations = invalidations_.load(std::memory_order_relaxed);
  out.lock_waits = lock_waits_.load(std::memory_order_relaxed);
  out.lock_wait_ns = lock_wait_ns_.load(std::memory_order_relaxed);
  return out;
}

size_t OfferCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

}  // namespace qtrade
