#include "opt/offer.h"

#include <algorithm>
#include <sstream>

#include "util/strings.h"

namespace qtrade {

const char* OfferKindName(OfferKind kind) {
  switch (kind) {
    case OfferKind::kCoreRows:
      return "CoreRows";
    case OfferKind::kPartialAggregate:
      return "PartialAggregate";
    case OfferKind::kFinalAnswer:
      return "FinalAnswer";
  }
  return "?";
}

std::vector<std::string> Offer::AliasSet() const {
  std::vector<std::string> out;
  out.reserve(coverage.size());
  for (const auto& c : coverage) out.push_back(c.alias);
  return out;
}

std::string Offer::CoverageSignature() const {
  // Two offers are the same commodity only when they promise the same
  // fragment coverage of the same alias set; only those are
  // price-comparable in auctions and bargaining.
  std::vector<std::string> parts;
  for (const auto& cov : coverage) {
    std::vector<std::string> pids = cov.partitions;
    std::sort(pids.begin(), pids.end());
    parts.push_back(cov.alias + ":" + Join(pids, "|"));
  }
  std::sort(parts.begin(), parts.end());
  return Join(parts, ";");
}

const OfferCoverage* Offer::FindCoverage(const std::string& alias) const {
  for (const auto& c : coverage) {
    if (c.alias == alias) return &c;
  }
  return nullptr;
}

std::string Offer::ToString() const {
  std::ostringstream out;
  out << "Offer[" << offer_id << " by " << seller << ", "
      << OfferKindName(kind) << ", cost=" << props.total_time_ms
      << "ms, rows=" << props.rows << ", cover={";
  for (size_t i = 0; i < coverage.size(); ++i) {
    if (i > 0) out << "; ";
    out << coverage[i].alias << ":" << Join(coverage[i].partitions, ",");
  }
  out << "}] " << sql::ToSql(query);
  return out.str();
}

}  // namespace qtrade
