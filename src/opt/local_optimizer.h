// Seller-side System-R style dynamic-programming optimizer over local
// fragments, plus the paper's §3.4 "modified DP" that retains the optimal
// partial result for every join subset (those partials become offers), and
// the IDP-M(k,m) variant of [Kossmann & Stocker] referenced in §3.6.
#ifndef QTRADE_OPT_LOCAL_OPTIMIZER_H_
#define QTRADE_OPT_LOCAL_OPTIMIZER_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "opt/parallel/search_pool.h"
#include "plan/plan_factory.h"
#include "sql/analyzer.h"
#include "stats/column_stats.h"
#include "util/status.h"

namespace qtrade {

/// How the DP lattices are searched (LocalOptimizer::Run and
/// PlanAssembler::Assemble). Winning plans, costs and statistics are
/// byte-identical at every thread count — parallelism only changes wall
/// time (see DESIGN.md "Parallel plan search").
struct DpSearchOptions {
  /// Total threads searching one lattice level; the caller counts as
  /// one, so <=1 keeps the enumeration entirely on the calling thread.
  int threads = 0;
  /// Pool supplying helper threads; nullptr = the process-wide
  /// PlanSearchPool::Shared(). Tests inject private pools here.
  PlanSearchPool* pool = nullptr;
  /// When tracing, the search emits per-level dp_level[k] fan-out spans
  /// and dp_merge barrier spans under `parent`.
  obs::Tracer* tracer = nullptr;
  obs::SpanRef parent;
};

/// One base-relation input to join enumeration: the fragment a node (or a
/// baseline's chosen site) would scan for one query alias.
struct AliasInput {
  std::string alias;
  std::string table;
  TupleSchema schema;                   // columns qualified by `alias`
  TableStats stats;                     // fragment statistics (pre-filter)
  std::vector<std::string> partitions;  // fragments scanned
  /// Extra predicate restricting this alias beyond the query's own local
  /// predicates (e.g. the partition restriction); may be null.
  sql::ExprPtr extra_filter;
};

/// Builds the qualified scan schema for a table alias.
TupleSchema QualifiedSchema(const TableDef& table, const std::string& alias);

/// Best plan found for one subset of aliases.
struct SubPlan {
  uint32_t mask = 0;   // bit i = i-th alias of the enumeration order
  PlanPtr plan;
  double rows = 0;
  /// Post-filter statistics per alias index, used for join selectivity at
  /// higher levels (shared across subsets; see LocalOptimizer).
};

/// Tuning for iterative dynamic programming. k = level at which pruning
/// kicks in, m = number of k-way subplans retained. {0, 0} = plain DP.
struct IdpParams {
  int k = 0;
  int m = 0;
  bool enabled() const { return k > 1 && m > 0; }
};

/// Join enumeration over a fixed set of alias inputs. Produces the best
/// plan per alias subset (the modified DP of §3.4) or just the best full
/// plan. Cartesian products are admitted only when the join graph leaves
/// no connected alternative.
class LocalOptimizer {
 public:
  /// `query` supplies predicates/join graph; `inputs` must contain one
  /// entry per query alias that should be enumerated (callers may pass a
  /// subset of the query's aliases, e.g. the seller's kept tables).
  LocalOptimizer(const sql::BoundQuery* query, std::vector<AliasInput> inputs,
                 const PlanFactory* factory, IdpParams idp = {});

  /// Configures parallel search + tracing for Run(). Call before Run();
  /// the default ({}) is the serial enumeration.
  void set_search(DpSearchOptions search) { search_ = std::move(search); }

  /// Runs enumeration. Must be called before the accessors.
  Status Run();

  /// Best plan per subset mask (the §3.4 partial results). With IDP,
  /// pruned subsets are absent.
  const std::map<uint32_t, SubPlan>& subplans() const { return subplans_; }

  /// Best plan joining all inputs; NoPlanFound if Run() was unable to
  /// connect them (never happens: cartesian fallback).
  Result<PlanPtr> BestFullPlan() const;

  /// Estimated output rows for the full join.
  Result<double> FullRows() const;

  size_t num_inputs() const { return inputs_.size(); }
  const AliasInput& input(size_t i) const { return inputs_[i]; }

  /// Index of `alias` in enumeration order; nullopt when absent.
  std::optional<int> AliasIndex(const std::string& alias) const;

 private:
  /// Builds the leaf (scan) subplan for input `i`.
  SubPlan MakeLeaf(int i) const;

  /// Joins two disjoint subplans; returns nullopt when no join predicate
  /// connects them and `require_connected` is true.
  std::optional<SubPlan> Join(const SubPlan& left, const SubPlan& right,
                              bool require_connected) const;

  /// Join predicates with one side in `a` and the other in `b`.
  std::vector<const sql::Conjunct*> ConnectingPredicates(uint32_t a,
                                                         uint32_t b) const;

  /// Best plan for subset `s` from the already-finished smaller levels of
  /// `subplans_`: connected splits first, cartesian fallback only when no
  /// connected split exists. Ties resolve to the first split in
  /// enumeration order (strict `<` on cost), which is what makes the
  /// result independent of which thread computes it. Reads `subplans_`
  /// only for masks of popcount < popcount(s), so every subset of one
  /// level can run concurrently.
  std::optional<SubPlan> BestForSubset(uint32_t s) const;

  /// Post-local-filter stats of alias i (computed once in Run()).
  const TableStats& FilteredStats(int i) const { return filtered_stats_[i]; }

  const sql::BoundQuery* query_;
  std::vector<AliasInput> inputs_;
  const PlanFactory* factory_;
  IdpParams idp_;
  DpSearchOptions search_;

  std::map<std::string, int> alias_index_;
  std::vector<TableStats> filtered_stats_;
  std::vector<double> filtered_rows_;
  std::map<uint32_t, SubPlan> subplans_;
  bool ran_ = false;
};

}  // namespace qtrade

#endif  // QTRADE_OPT_LOCAL_OPTIMIZER_H_
