#include "baseline/global_optimizer.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "rewrite/predicate.h"
#include "stats/selectivity.h"

namespace qtrade {

namespace {

using sql::BoundQuery;
using sql::ExprPtr;

/// Deterministic multiplicative error in [1/(1+eps), 1+eps] derived from
/// the key, so the same statistic is consistently wrong across the run —
/// the way a stale catalog is wrong.
double ErrorFactor(const std::string& key, double eps, uint64_t seed) {
  if (eps <= 0) return 1.0;
  uint64_t h = seed ^ std::hash<std::string>()(key);
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  double u = static_cast<double>(h % 2000001) / 1000000.0 - 1.0;  // [-1, 1]
  return std::exp(u * std::log1p(eps));
}

TableStats PerturbStats(const TableStats& stats, const std::string& key,
                        double eps, uint64_t seed) {
  if (eps <= 0) return stats;
  TableStats out = stats;
  double row_factor = ErrorFactor(key + "#rows", eps, seed);
  out.row_count = std::max<int64_t>(
      1, static_cast<int64_t>(std::llround(stats.row_count * row_factor)));
  for (auto& [name, col] : out.columns) {
    double ndv_factor = ErrorFactor(key + "#" + name, eps, seed);
    col.ndv = std::max<int64_t>(
        1, static_cast<int64_t>(std::llround(col.ndv * ndv_factor)));
    for (auto& [value, count] : col.mcv) {
      count = std::max<int64_t>(
          1, static_cast<int64_t>(std::llround(count * row_factor)));
    }
  }
  return out;
}

struct AliasInfo {
  std::string alias;
  std::string table;
  std::vector<const PartitionDef*> feasible;  // partitions that can hold rows
  /// Per feasible partition: the chosen host per candidate site (itself
  /// when hosted there, else the first replica).
  std::vector<std::vector<std::string>> hosts;  // [site][partition]
  std::vector<std::string> sites;               // candidate sites
  // Filtered (post-local-predicate) alias statistics.
  TableStats est_stats;
  TableStats true_stats;
  double est_rows = 0;
  double true_rows = 0;
  double row_bytes = 64;       // full tuple width (scanning)
  double ship_bytes = 32;      // width of the columns actually needed
  // Per-site materialization costs of the full filtered extent.
  std::vector<double> est_cost;   // [site]
  std::vector<double> true_cost;  // [site]
};

}  // namespace

struct GlobalOptimizer::Entry {
  uint32_t mask = 0;
  int site = -1;  // index into the global site list
  double est_cost = 0;
  double true_cost = 0;
  double est_rows = 0;
  double true_rows = 0;
  double ship_bytes = 32;  // width of one shipped tuple of this subset
  PlanPtr plan;
};

GlobalOptimizer::GlobalOptimizer(Federation* federation,
                                 std::string coordinator,
                                 GlobalOptimizerOptions options)
    : federation_(federation),
      coordinator_(std::move(coordinator)),
      options_(options) {}

Result<GlobalPlanResult> GlobalOptimizer::Optimize(const std::string& sql) {
  const FederationSchema& schema = federation_->schema();
  const GlobalCatalog& global = *federation_->global_catalog();
  const PlanFactory& factory = federation_->factory();
  const CostModel& cost = factory.cost_model();

  QTRADE_ASSIGN_OR_RETURN(BoundQuery query, sql::AnalyzeSql(sql, schema));
  const size_t n = query.tables.size();
  if (n == 0 || n > 16) {
    return Status::InvalidArgument("unsupported query arity");
  }

  // ---- Global site list: nodes hosting any relevant partition, plus the
  // coordinator.
  std::vector<std::string> sites;
  std::map<std::string, int> site_index;
  auto intern_site = [&](const std::string& name) {
    auto it = site_index.find(name);
    if (it != site_index.end()) return it->second;
    site_index[name] = static_cast<int>(sites.size());
    sites.push_back(name);
    return static_cast<int>(sites.size()) - 1;
  };
  intern_site(coordinator_);

  // ---- Per-alias info.
  std::vector<AliasInfo> aliases(n);
  for (size_t i = 0; i < n; ++i) {
    AliasInfo& info = aliases[i];
    info.alias = query.tables[i].alias;
    info.table = query.tables[i].table;
    const TablePartitioning* partitioning =
        schema.FindPartitioning(info.table);
    std::vector<ExprPtr> local = query.LocalPredicates(info.alias);

    std::map<std::string, int> host_score;  // candidate sites for this alias
    for (const auto& part : partitioning->partitions) {
      bool infeasible = false;
      if (part.predicate != nullptr) {
        std::vector<ExprPtr> together = local;
        together.push_back(part.PredicateFor(info.alias));
        infeasible = ProvablyUnsatisfiable(together);
      }
      if (infeasible) continue;
      std::vector<std::string> replicas = global.ReplicaNodes(part.id);
      if (replicas.empty()) {
        return Status::NoPlanFound("partition " + part.id +
                                   " is hosted nowhere");
      }
      info.feasible.push_back(&part);
      for (const auto& node : replicas) host_score[node]++;
    }
    if (info.feasible.empty()) {
      // Query predicates exclude every partition: empty extent is fine;
      // keep one pseudo-partitionless alias with zero rows at the
      // coordinator.
    }
    // Candidate sites: hosts by coverage, capped; coordinator always in.
    std::vector<std::pair<int, std::string>> ranked;
    for (const auto& [node, score] : host_score) {
      ranked.emplace_back(-score, node);
    }
    std::sort(ranked.begin(), ranked.end());
    for (const auto& [neg, node] : ranked) {
      if (static_cast<int>(info.sites.size()) >=
          options_.max_sites_per_alias) {
        break;
      }
      info.sites.push_back(node);
      intern_site(node);
    }
    if (std::find(info.sites.begin(), info.sites.end(), coordinator_) ==
        info.sites.end()) {
      info.sites.push_back(coordinator_);
    }

    // Statistics (true and perturbed) of the filtered extent, plus
    // per-site materialization costs.
    TableStats est_acc, true_acc;
    bool have = false;
    for (const PartitionDef* part : info.feasible) {
      const TableStats* truth = global.PartitionStats(part->id);
      if (truth == nullptr) continue;
      TableStats est = PerturbStats(*truth, part->id, options_.stats_error,
                                    options_.seed);
      est_acc = have ? TableStats::MergeDisjoint(est_acc, est) : est;
      true_acc = have ? TableStats::MergeDisjoint(true_acc, *truth) : *truth;
      have = true;
    }
    double est_sel = EstimateConjunctSelectivity(local, est_acc);
    double true_sel = EstimateConjunctSelectivity(local, true_acc);
    info.est_stats = est_acc.Scaled(est_sel);
    info.true_stats = true_acc.Scaled(true_sel);
    info.est_rows = est_acc.row_count * est_sel;
    info.true_rows = true_acc.row_count * true_sel;
    const TableDef* def = schema.FindTable(info.table);
    info.row_bytes = EstimateRowBytes(QualifiedSchema(*def, info.alias));
    {
      // A real distributed optimizer projects before shipping: the wire
      // width is the width of the columns this query needs from the
      // alias (outputs, grouping/ordering inputs, join columns).
      std::set<std::string> needed;
      auto collect = [&](const ExprPtr& expr) {
        sql::ForEachColumnRef(expr, [&](const sql::Expr& ref) {
          if (ref.qualifier == info.alias) needed.insert(ref.column);
        });
      };
      for (const auto& out : query.outputs) collect(out.expr);
      for (const auto& g : query.group_by) {
        if (g.alias == info.alias) needed.insert(g.column);
      }
      collect(query.having);
      for (const auto& o : query.order_by) collect(o.expr);
      for (const auto& conj : query.conjuncts) {
        if (conj.kind != sql::ConjunctKind::kLocal) collect(conj.expr);
      }
      TupleSchema shipped;
      for (const auto& col : def->columns) {
        if (needed.count(col.name) > 0) {
          shipped.AddColumn({info.alias, col.name, col.type});
        }
      }
      info.ship_bytes = EstimateRowBytes(shipped);
    }

    info.est_cost.assign(info.sites.size(), 0);
    info.true_cost.assign(info.sites.size(), 0);
    info.hosts.assign(info.sites.size(), {});
    for (size_t s = 0; s < info.sites.size(); ++s) {
      const std::string& site = info.sites[s];
      for (const PartitionDef* part : info.feasible) {
        const TableStats* truth = global.PartitionStats(part->id);
        if (truth == nullptr) continue;
        TableStats est = PerturbStats(*truth, part->id,
                                      options_.stats_error, options_.seed);
        std::vector<std::string> replicas = global.ReplicaNodes(part->id);
        std::string host = site;
        if (std::find(replicas.begin(), replicas.end(), site) ==
            replicas.end()) {
          host = replicas.front();
        }
        info.hosts[s].push_back(host);
        double est_part_sel = EstimateConjunctSelectivity(local, est);
        double true_part_sel = EstimateConjunctSelectivity(local, *truth);
        info.est_cost[s] += cost.ScanCost(est.row_count, info.row_bytes,
                                          static_cast<int>(local.size()));
        info.true_cost[s] += cost.ScanCost(truth->row_count, info.row_bytes,
                                           static_cast<int>(local.size()));
        if (host != site) {
          info.est_cost[s] += cost.TransferCost(
              est.row_count * est_part_sel, info.ship_bytes);
          info.true_cost[s] += cost.TransferCost(
              truth->row_count * true_part_sel, info.ship_bytes);
        }
      }
    }
  }

  // ---- Site-aware DP, indexed by mask; per mask keep the best entry per
  // site, capped to the cheapest kMaxSitesPerMask sites.
  constexpr size_t kMaxSitesPerMask = 8;
  GlobalPlanResult result;
  std::map<uint32_t, std::map<int, Entry>> by_mask;
  auto consider = [&](Entry entry) {
    std::map<int, Entry>& sites_of = by_mask[entry.mask];
    auto it = sites_of.find(entry.site);
    if (it == sites_of.end() || entry.est_cost < it->second.est_cost) {
      sites_of[entry.site] = std::move(entry);
      ++result.subplans_enumerated;
      if (sites_of.size() > kMaxSitesPerMask) {
        // Drop the most expensive site.
        auto worst = sites_of.begin();
        for (auto sit = sites_of.begin(); sit != sites_of.end(); ++sit) {
          if (sit->second.est_cost > worst->second.est_cost) worst = sit;
        }
        sites_of.erase(worst);
      }
    }
  };

  for (size_t i = 0; i < n; ++i) {
    const AliasInfo& info = aliases[i];
    const TableDef* def = schema.FindTable(info.table);
    for (size_t s = 0; s < info.sites.size(); ++s) {
      Entry entry;
      entry.mask = 1u << i;
      entry.site = site_index.at(info.sites[s]);
      entry.est_cost = info.est_cost[s];
      entry.true_cost = info.true_cost[s];
      entry.est_rows = info.est_rows;
      entry.true_rows = info.true_rows;
      entry.ship_bytes = info.ship_bytes;
      std::vector<std::string> partition_ids;
      for (const PartitionDef* part : info.feasible) {
        partition_ids.push_back(part->id);
      }
      entry.plan = factory.Scan(
          info.table, info.alias, QualifiedSchema(*def, info.alias),
          partition_ids, sql::AndAll(query.LocalPredicates(info.alias)),
          info.est_rows, info.est_rows, info.row_bytes);
      consider(std::move(entry));
    }
  }

  // Join predicates connecting two masks (within mask union).
  auto connecting = [&](uint32_t a, uint32_t b) {
    std::vector<const sql::Conjunct*> out;
    for (const auto& conj : query.conjuncts) {
      if (conj.kind == sql::ConjunctKind::kLocal) continue;
      uint32_t mask = 0;
      for (const auto& alias : conj.aliases) {
        for (size_t i = 0; i < n; ++i) {
          if (aliases[i].alias == alias) mask |= 1u << i;
        }
      }
      if ((mask & a) != 0 && (mask & b) != 0 && (mask & ~(a | b)) == 0) {
        out.push_back(&conj);
      }
    }
    return out;
  };
  auto alias_stats = [&](const sql::BoundColumn& col, bool truth)
      -> const ColumnStats* {
    for (size_t i = 0; i < n; ++i) {
      if (aliases[i].alias == col.alias) {
        const TableStats& stats =
            truth ? aliases[i].true_stats : aliases[i].est_stats;
        return stats.FindColumn(col.column);
      }
    }
    return nullptr;
  };

  const uint32_t full = (1u << n) - 1;
  for (size_t size = 2; size <= n; ++size) {
    for (uint32_t mask = 1; mask <= full; ++mask) {
      if (static_cast<size_t>(__builtin_popcount(mask)) != size) continue;
      for (uint32_t sub = (mask - 1) & mask; sub > 0;
           sub = (sub - 1) & mask) {
        uint32_t rest = mask ^ sub;
        if (sub > rest) continue;
        auto left_it = by_mask.find(sub);
        auto right_it = by_mask.find(rest);
        if (left_it == by_mask.end() || right_it == by_mask.end()) continue;
        auto preds = connecting(sub, rest);
        for (const auto& [site_l, left] : left_it->second) {
          for (const auto& [site_r, right] : right_it->second) {
            // Selectivities.
            double est_sel = 1, true_sel = 1;
            std::vector<std::pair<sql::BoundColumn, sql::BoundColumn>> keys;
            std::vector<ExprPtr> residual;
            for (const sql::Conjunct* conj : preds) {
              if (conj->kind == sql::ConjunctKind::kEquiJoin) {
                est_sel *= EstimateEquiJoinSelectivity(
                    alias_stats(conj->left, false),
                    alias_stats(conj->right, false));
                true_sel *= EstimateEquiJoinSelectivity(
                    alias_stats(conj->left, true),
                    alias_stats(conj->right, true));
                keys.emplace_back(conj->left, conj->right);
              } else {
                est_sel *= SelectivityDefaults::kOther;
                true_sel *= SelectivityDefaults::kOther;
                residual.push_back(conj->expr);
              }
            }
            double est_rows = left.est_rows * right.est_rows * est_sel;
            double true_rows = left.true_rows * right.true_rows * true_sel;
            for (int site : {left.site, right.site}) {
              Entry entry;
              entry.mask = mask;
              entry.site = site;
              entry.est_rows = est_rows;
              entry.true_rows = true_rows;
              entry.ship_bytes = left.ship_bytes + right.ship_bytes;
              double est_ship = 0, true_ship = 0;
              if (left.site != site) {
                est_ship +=
                    cost.TransferCost(left.est_rows, left.ship_bytes);
                true_ship +=
                    cost.TransferCost(left.true_rows, left.ship_bytes);
              }
              if (right.site != site) {
                est_ship +=
                    cost.TransferCost(right.est_rows, right.ship_bytes);
                true_ship +=
                    cost.TransferCost(right.true_rows, right.ship_bytes);
              }
              double est_join, true_join;
              if (!keys.empty()) {
                est_join = cost.HashJoinCost(
                    std::min(left.est_rows, right.est_rows),
                    std::max(left.est_rows, right.est_rows), est_rows);
                true_join = cost.HashJoinCost(
                    std::min(left.true_rows, right.true_rows),
                    std::max(left.true_rows, right.true_rows), true_rows);
              } else {
                est_join = cost.NlJoinCost(left.est_rows, right.est_rows);
                true_join = cost.NlJoinCost(left.true_rows, right.true_rows);
              }
              entry.est_cost =
                  left.est_cost + right.est_cost + est_ship + est_join;
              entry.true_cost =
                  left.true_cost + right.true_cost + true_ship + true_join;
              PlanPtr l = left.plan, r = right.plan;
              auto oriented = keys;
              if (l->rows < r->rows) {
                std::swap(l, r);
                for (auto& [a, b] : oriented) std::swap(a, b);
              }
              entry.plan =
                  keys.empty()
                      ? factory.NlJoin(left.plan, right.plan,
                                       sql::AndAll(residual), est_rows)
                      : factory.HashJoin(l, r, oriented,
                                         sql::AndAll(residual), est_rows);
              consider(std::move(entry));
            }
          }
        }
      }
    }
    // IDP-M(k,m): after level k, keep the m best masks of that size.
    if (options_.idp.enabled() &&
        size == static_cast<size_t>(options_.idp.k) && size < n) {
      std::vector<std::pair<double, uint32_t>> ranked;
      for (const auto& [mask, sites_of] : by_mask) {
        if (static_cast<size_t>(__builtin_popcount(mask)) !=
            static_cast<size_t>(options_.idp.k)) {
          continue;
        }
        double best_cost = std::numeric_limits<double>::infinity();
        for (const auto& [site, entry] : sites_of) {
          best_cost = std::min(best_cost, entry.est_cost);
        }
        ranked.emplace_back(best_cost, mask);
      }
      if (static_cast<int>(ranked.size()) > options_.idp.m) {
        std::sort(ranked.begin(), ranked.end());
        for (size_t i = options_.idp.m; i < ranked.size(); ++i) {
          by_mask.erase(ranked[i].second);
        }
      }
    }
  }

  // ---- Finalize at the coordinator.
  const Entry* best = nullptr;
  double best_total = 0, best_true_total = 0;
  int coord = site_index.at(coordinator_);
  auto full_it = by_mask.find(full);
  if (full_it == by_mask.end()) {
    return Status::NoPlanFound("global DP produced no full plan");
  }
  for (const auto& [site, entry] : full_it->second) {
    double est_total = entry.est_cost;
    double true_total = entry.true_cost;
    if (entry.site != coord) {
      est_total += cost.TransferCost(entry.est_rows, entry.ship_bytes);
      true_total += cost.TransferCost(entry.true_rows, entry.ship_bytes);
    }
    if (query.has_aggregates || !query.group_by.empty()) {
      double est_groups =
          query.group_by.empty() ? 1 : std::max(1.0, entry.est_rows * 0.1);
      double true_groups =
          query.group_by.empty() ? 1 : std::max(1.0, entry.true_rows * 0.1);
      est_total += cost.AggregateCost(entry.est_rows, est_groups);
      true_total += cost.AggregateCost(entry.true_rows, true_groups);
    }
    if (best == nullptr || est_total < best_total) {
      best = &entry;
      best_total = est_total;
      best_true_total = true_total;
    }
  }
  if (best == nullptr) {
    return Status::NoPlanFound("global DP produced no full plan");
  }
  result.est_cost = best_total;
  result.true_cost = best_true_total;
  result.est_rows = best->est_rows;
  // Final compensation on the tree (for explain purposes).
  PlanPtr plan = best->plan;
  if (query.has_aggregates || !query.group_by.empty()) {
    plan = factory.Aggregate(plan, query.outputs, query.group_by,
                             query.having,
                             query.group_by.empty()
                                 ? 1.0
                                 : std::max(1.0, best->est_rows * 0.1));
  } else {
    plan = factory.Project(plan, query.outputs);
  }
  if (!query.order_by.empty()) plan = factory.Sort(plan, query.order_by);
  result.plan = plan;
  return result;
}

}  // namespace qtrade
