// Traditional distributed query optimization baselines: a System-R*-style
// site-aware dynamic-programming optimizer that reads the omniscient
// GlobalCatalog (complete knowledge of placement and statistics — the
// very thing autonomy denies), and its IDP-M(k,m) variant [2].
//
// To model the autonomy penalty the paper motivates (remote statistics at
// a traditional coordinator are stale/inaccurate), the optimizer can
// perturb every statistic by a multiplicative error drawn from
// [1/(1+eps), 1+eps]: decisions are made with perturbed numbers while the
// *true* cost of the chosen plan is tracked in parallel and reported.
// QT needs no such knob: sellers price offers with their own accurate
// local statistics by construction.
#ifndef QTRADE_BASELINE_GLOBAL_OPTIMIZER_H_
#define QTRADE_BASELINE_GLOBAL_OPTIMIZER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/federation.h"
#include "opt/local_optimizer.h"
#include "util/random.h"
#include "util/status.h"

namespace qtrade {

struct GlobalOptimizerOptions {
  /// IDP-M(k,m) pruning; {0,0} = exact DP.
  IdpParams idp;
  /// Statistics error epsilon; 0 = perfect knowledge.
  double stats_error = 0;
  uint64_t seed = 7;
  /// Candidate execution sites considered per alias (the nodes hosting
  /// the most of its partitions); bounds the (subset x site) state space.
  int max_sites_per_alias = 4;
};

struct GlobalPlanResult {
  PlanPtr plan;          // annotated tree (costs = estimated)
  double est_cost = 0;   // cost under the (possibly perturbed) statistics
  double true_cost = 0;  // same plan re-costed with accurate statistics
  double est_rows = 0;
  int subplans_enumerated = 0;
};

class GlobalOptimizer {
 public:
  GlobalOptimizer(Federation* federation, std::string coordinator,
                  GlobalOptimizerOptions options = {});

  /// Optimizes a SELECT query with full global knowledge.
  Result<GlobalPlanResult> Optimize(const std::string& sql);

 private:
  struct Entry;  // (subset, site) DP state

  Federation* federation_;
  std::string coordinator_;
  GlobalOptimizerOptions options_;
};

}  // namespace qtrade

#endif  // QTRADE_BASELINE_GLOBAL_OPTIMIZER_H_
