// Buyer-internal negotiation records. The wire-level message schemas
// (Rfb, offer batches, AuctionTick, CounterOffer, AwardBatch) and the
// TradeMetrics accounting struct moved to net/wire.h so they belong to
// the Transport layer; this header re-exports them for convenience.
#ifndef QTRADE_TRADING_MESSAGES_H_
#define QTRADE_TRADING_MESSAGES_H_

#include <map>
#include <set>
#include <string>

#include "net/wire.h"
#include "opt/offer.h"

namespace qtrade {

/// One entry of the buyer's working set Q (Fig. 2): a query to trade plus
/// the buyer's current value estimate and the sub-box of the original
/// query it is meant to cover (used to clip offer coverage). Never sent
/// over the wire — the RFB derived from it is.
struct TradedQuery {
  std::string rfb_id;
  sql::SelectStmt stmt;
  double estimated_value = -1;
  /// Per alias: the partitions this query asks about. Empty map = the
  /// whole (feasible) box of the original query.
  std::map<std::string, std::set<std::string>> ask_box;
};

}  // namespace qtrade

#endif  // QTRADE_TRADING_MESSAGES_H_
