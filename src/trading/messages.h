// Wire-level message schemas of the trading negotiation, and the
// per-optimization accounting the experiments report. Queries travel as
// SQL text (the commodity description); offers carry the §3.1 property
// vector.
#ifndef QTRADE_TRADING_MESSAGES_H_
#define QTRADE_TRADING_MESSAGES_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "opt/offer.h"

namespace qtrade {

/// Request for bids (paper Fig. 2, step B2).
struct Rfb {
  std::string rfb_id;
  std::string buyer;
  std::string sql;           // the traded query
  double reserve_value = -1; // buyer's strategic value estimate; <0 unknown
  /// May the receiving seller subcontract missing fragments from its own
  /// peers (§3.5)? Subcontract RFBs clear this, bounding the depth at 1.
  bool allow_subcontract = true;

  /// Approximate wire size (for message accounting).
  int64_t WireBytes() const {
    return static_cast<int64_t>(sql.size()) + 64;
  }
};

/// Approximate wire size of an offer message.
int64_t OfferWireBytes(const Offer& offer);

/// Award notification (winning offers; Fig. 2 step B3/S3).
struct Award {
  std::string rfb_id;
  std::string offer_id;
};

/// Auction-round announcement: current best score among the offers of
/// one traded query that span the same alias set (only those are
/// price-comparable).
struct AuctionTick {
  std::string rfb_id;
  std::string signature;  // Offer::CoverageSignature() of the group
  double best_score = 0;  // score of the currently winning offer
};

/// One entry of the buyer's working set Q (Fig. 2): a query to trade plus
/// the buyer's current value estimate and the sub-box of the original
/// query it is meant to cover (used to clip offer coverage).
struct TradedQuery {
  std::string rfb_id;
  sql::SelectStmt stmt;
  double estimated_value = -1;
  /// Per alias: the partitions this query asks about. Empty map = the
  /// whole (feasible) box of the original query.
  std::map<std::string, std::set<std::string>> ask_box;
};

/// Accounting for one optimization run.
struct TradeMetrics {
  int iterations = 0;
  int64_t rfbs_sent = 0;
  int64_t offers_received = 0;
  int64_t awards_sent = 0;
  int64_t messages = 0;
  int64_t bytes = 0;
  double sim_elapsed_ms = 0;   // virtual negotiation time
  double wall_opt_ms = 0;      // real optimizer CPU time
  int auction_rounds = 0;
  int bargain_rounds = 0;
};

}  // namespace qtrade

#endif  // QTRADE_TRADING_MESSAGES_H_
