#include "trading/seller_engine.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <set>
#include <unordered_map>

#include "exec/vec/vectorized.h"

#include "rewrite/partition_rewriter.h"
#include "rewrite/view_matcher.h"
#include "stats/selectivity.h"
#include "trading/buyer_analyser.h"

namespace qtrade {

SellerEngine::SellerEngine(NodeCatalog* catalog, TableStore* store,
                           const PlanFactory* factory,
                           std::unique_ptr<SellerStrategy> strategy,
                           OfferGeneratorOptions generator_options)
    : catalog_(catalog),
      store_(store),
      factory_(factory),
      strategy_(std::move(strategy)),
      generator_(catalog, factory, generator_options) {
  if (!strategy_) strategy_ = std::make_unique<TruthfulStrategy>();
  // Cached so quote paths can decide whether to assemble a QuoteContext
  // without a virtual call on the shared strategy outside the lock.
  wants_context_ = strategy_->wants_context();
}

namespace {
// Aligns `rows` to `schema` column order by (qualifier, name); drops
// extra columns the subcontractor shipped (e.g. its clip columns).
Result<RowSet> ProjectTo(const TupleSchema& schema, const RowSet& rows) {
  std::vector<size_t> indices;
  for (const auto& col : schema.columns()) {
    QTRADE_ASSIGN_OR_RETURN(size_t idx,
                            rows.schema.FindColumn(col.qualifier, col.name));
    indices.push_back(idx);
  }
  RowSet out;
  out.schema = schema;
  for (const auto& row : rows.rows) {
    Row projected;
    projected.reserve(indices.size());
    for (size_t idx : indices) projected.push_back(row[idx]);
    out.rows.push_back(std::move(projected));
  }
  return out;
}

// Interned view of one table's partition list: partition ids resolve to
// their index in the TablePartitioning once, so the subcontracting cover
// loop can track coverage as a word-packed bitmask instead of
// allocating std::set<std::string> boxes per round.
class PartitionIndex {
 public:
  static constexpr size_t kNotFound = static_cast<size_t>(-1);

  explicit PartitionIndex(const TablePartitioning& partitioning)
      : partitioning_(&partitioning) {
    index_.reserve(partitioning.partitions.size());
    for (size_t i = 0; i < partitioning.partitions.size(); ++i) {
      index_.emplace(partitioning.partitions[i].id, i);
    }
  }

  size_t size() const { return partitioning_->partitions.size(); }
  const std::string& id(size_t i) const {
    return partitioning_->partitions[i].id;
  }
  /// kNotFound for ids of other tables (a malformed peer coverage entry
  /// then simply never counts as covering anything, as before).
  size_t Find(const std::string& partition_id) const {
    auto it = index_.find(partition_id);
    return it == index_.end() ? kNotFound : it->second;
  }

 private:
  const TablePartitioning* partitioning_;
  std::unordered_map<std::string, size_t> index_;
};

// Bitmask over interned partition indices; generic word count so tables
// with more than 64 partitions stay correct.
class PartitionMask {
 public:
  explicit PartitionMask(size_t bits) : words_((bits + 63) / 64, 0) {}

  void Set(size_t i) { words_[i >> 6] |= uint64_t{1} << (i & 63); }
  void Clear(size_t i) { words_[i >> 6] &= ~(uint64_t{1} << (i & 63)); }
  bool Test(size_t i) const {
    return ((words_[i >> 6] >> (i & 63)) & uint64_t{1}) != 0;
  }
  bool Any() const {
    for (uint64_t w : words_) {
      if (w != 0) return true;
    }
    return false;
  }
  int Count() const {
    int n = 0;
    for (uint64_t w : words_) n += __builtin_popcountll(w);
    return n;
  }

 private:
  std::vector<uint64_t> words_;
};

// Materializes a mask back into partition ids (the set-valued shape
// BuildRestrictedSubsetQuery and offer coverage expect). Ascending
// index order; the std::set re-sorts lexicographically exactly as the
// old box bookkeeping did.
std::set<std::string> MaskToIds(const PartitionMask& mask,
                                const PartitionIndex& index) {
  std::set<std::string> out;
  for (size_t i = 0; i < index.size(); ++i) {
    if (mask.Test(i)) out.insert(index.id(i));
  }
  return out;
}

// Assembles the pricing context for a context-aware strategy: canonical
// signature + shape of the offered statement, and the offer's partition
// coverage rendered with the shape's positional alias ids so coverage
// containment composes with ShapeContains. Pure — safe to build outside
// the engine mutex.
QuoteContext BuildQuoteContext(const sql::BoundQuery& bound,
                               const std::vector<OfferCoverage>& coverage) {
  QuoteContext ctx;
  ctx.shape = CanonicalShape(bound);
  ctx.signature = CanonicalSignature(bound).text;
  for (const auto& cov : coverage) {
    std::string id = cov.alias;
    for (size_t i = 0; i < ctx.shape.aliases.size(); ++i) {
      if (ctx.shape.aliases[i] == cov.alias) {
        id = "t" + std::to_string(i);
        break;
      }
    }
    for (const auto& pid : cov.partitions) {
      ctx.coverage.push_back(id + ":" + pid);
    }
  }
  std::sort(ctx.coverage.begin(), ctx.coverage.end());
  return ctx;
}
}  // namespace

void SellerEngine::EnableSubcontracting(std::vector<std::string> peers,
                                        Transport* transport) {
  peer_names_.clear();
  for (auto& peer : peers) {
    if (!peer.empty() && peer != name()) {
      peer_names_.push_back(std::move(peer));
    }
  }
  transport_ = transport;
}

void SellerEngine::RecordOfferLocked(const std::string& rfb_id,
                                     OfferRecord record) {
  const std::string offer_id = record.offer.offer_id;
  auto& index = offers_by_rfb_[rfb_id];
  if (std::find(index.begin(), index.end(), offer_id) == index.end()) {
    index.push_back(offer_id);
  }
  records_.insert_or_assign(offer_id, std::move(record));
}

Result<std::vector<Offer>> SellerEngine::OnRfb(const Rfb& rfb) {
  rfbs_seen_.fetch_add(1, std::memory_order_relaxed);
  // The Rfb carries the buyer's rfb_broadcast span identity, so this
  // seller's spans nest correctly even when the transport dispatches
  // handlers on worker threads.
  obs::Tracer* tracer = tracer_.load(std::memory_order_relaxed);
  obs::Span gen_span =
      obs::Tracer::Active(tracer)
          ? tracer->StartSpan("offer_gen",
                              obs::SpanRef{rfb.trace_parent, rfb.trace_round,
                                           rfb.negotiation_id,
                                           rfb.trace.trace_id})
          : obs::Span();
  gen_span.Node(name());
  gen_span.Attr("rfb_id", rfb.rfb_id);
  QTRADE_ASSIGN_OR_RETURN(sql::BoundQuery asked,
                          sql::AnalyzeSql(rfb.sql, *catalog_));
  QTRADE_ASSIGN_OR_RETURN(
      std::vector<GeneratedOffer> generated,
      generator_.Generate(asked, rfb.rfb_id, gen_span.ref()));
  std::vector<Offer> out;
  for (auto& g : generated) {
    OfferRecord record;
    record.true_cost = g.true_cost;
    record.scan_partitions = std::move(g.scan_partitions);
    record.view_name = std::move(g.view_name);
    record.view_compensation = std::move(g.view_compensation);
    if (record.view_name.empty()) {
      // Bind the offered statement now so execution later is cheap and
      // failures surface at offer time.
      QTRADE_ASSIGN_OR_RETURN(record.exec_query,
                              sql::AnalyzeSql(sql::ToSql(g.offer.query),
                                              *catalog_));
    }
    // Context assembly (signatures, shapes) happens before the lock;
    // only the cost basis is filled in under it.
    QuoteContext ctx;
    bool has_ctx = false;
    if (wants_context_) {
      if (record.view_name.empty()) {
        ctx = BuildQuoteContext(record.exec_query, g.offer.coverage);
        has_ctx = true;
      } else {
        auto view_bound =
            sql::AnalyzeSql(sql::ToSql(g.offer.query), *catalog_);
        if (view_bound.ok()) {
          ctx = BuildQuoteContext(*view_bound, g.offer.coverage);
          has_ctx = true;
        }
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      double cost_basis = g.true_cost;
      if (cost_feedback_.load(std::memory_order_relaxed)) {
        // §3.1 feedback: blend the measured delivery cost of previously
        // sold answers with this signature into the basis the strategy
        // quotes from. The honest model estimate still anchors half the
        // basis so one outlier delivery cannot swing quotes wildly.
        auto it = observed_cost_ms_.find(g.offer.CoverageSignature());
        if (it != observed_cost_ms_.end()) {
          cost_basis = 0.5 * cost_basis + 0.5 * it->second;
        }
      }
      double quote;
      if (has_ctx) {
        ctx.true_cost_ms = cost_basis;
        quote = strategy_->QuoteWithContext(ctx);
      } else {
        quote = strategy_->Quote(cost_basis);
      }
      // The buyer never pays below the honest reserve when a reserve
      // value was announced and undercuts it: sellers keep their quote.
      g.offer.props.total_time_ms = quote;
      g.offer.props.price = quote - g.true_cost;  // seller surplus if won
      record.offer = g.offer;
      RecordOfferLocked(rfb.rfb_id, std::move(record));
    }
    out.push_back(std::move(g.offer));
  }
  if (rfb.allow_subcontract && transport_ != nullptr &&
      !peer_names_.empty()) {
    TrySubcontract(rfb, asked, &out, gen_span.ref());
  }
  gen_span.Attr("offers", static_cast<int64_t>(out.size()));
  return out;
}

void SellerEngine::TrySubcontract(const Rfb& rfb,
                                  const sql::BoundQuery& asked,
                                  std::vector<Offer>* out,
                                  obs::SpanRef parent) {
  // Find relations whose local fragment is incomplete for this query.
  auto rewrite = RewriteForLocalPartitions(asked, *catalog_);
  if (!rewrite.ok() || !rewrite->has_value()) return;
  const LocalRewrite& lr = **rewrite;
  const FederationSchema& federation = catalog_->federation();
  const CostModel& cost = factory_->cost_model();

  obs::Tracer* tracer = tracer_.load(std::memory_order_relaxed);
  int attempts = 0;
  for (const AliasCoverage& cov : lr.coverage) {
    if (cov.complete || attempts >= 2) continue;
    ++attempts;
    obs::Span cover_span = obs::Tracer::Active(tracer)
                               ? tracer->StartSpan("partition_cover", parent)
                               : obs::Span();
    cover_span.Node(name());
    cover_span.Attr("alias", cov.alias);
    // The missing slice of this relation, as an interned bitmask.
    const TablePartitioning* partitioning =
        federation.FindPartitioning(cov.table);
    const PartitionIndex part_index(*partitioning);
    PartitionMask covered(part_index.size());
    for (const auto& pid : cov.covered_partitions) {
      const size_t i = part_index.Find(pid);
      if (i != PartitionIndex::kNotFound) covered.Set(i);
    }
    PartitionMask initial_missing(part_index.size());
    for (size_t i = 0; i < part_index.size(); ++i) {
      if (!covered.Test(i)) initial_missing.Set(i);
    }
    if (!initial_missing.Any() || initial_missing.Count() > 4) continue;

    // Greedy multi-peer cover: each round asks peers for the fragments
    // still missing; because every sub-RFB is restricted to the current
    // missing set, delivered rows across rounds are disjoint.
    PartitionMask missing = initial_missing;
    std::vector<std::pair<std::string, const Offer*>> bought;
    std::vector<std::vector<Offer>> keepalive;  // owns chosen offers
    double bought_cost = 0;
    double bought_rows = 0;
    for (int round = 0; round < 4 && missing.Any(); ++round) {
      std::map<std::string, std::set<std::string>> ask;
      ask[cov.alias] = MaskToIds(missing, part_index);
      Rfb sub;
      // Deterministic id regardless of concurrent RFB handling: derived
      // from the parent RFB, not from an engine-wide counter.
      sub.rfb_id =
          rfb.rfb_id + "/sub/" + cov.alias + "/" + std::to_string(round);
      sub.buyer = name();
      sub.allow_subcontract = false;  // depth 1
      sub.sql = sql::ToSql(
          BuildRestrictedSubsetQuery(asked, {cov.alias}, ask, federation));

      std::vector<OfferReply> replies = transport_->BroadcastRfb(
          name(), sub, peer_names_, "subrfb", "suboffer");
      // Cheapest offer per newly covered missing partition wins the round.
      const std::string* round_peer = nullptr;
      size_t round_index = 0, round_reply = 0;
      double round_marginal = 0;
      for (size_t ri = 0; ri < replies.size(); ++ri) {
        const OfferReply& reply = replies[ri];
        if (!reply.ok || reply.dropped || reply.duplicated) continue;
        for (size_t oi = 0; oi < reply.offers.size(); ++oi) {
          const Offer& offer = reply.offers[oi];
          if (offer.kind != OfferKind::kCoreRows) continue;
          const OfferCoverage* offered = offer.FindCoverage(cov.alias);
          if (offered == nullptr) continue;
          int covers_new = 0;
          for (const auto& pid : offered->partitions) {
            const size_t i = part_index.Find(pid);
            if (i != PartitionIndex::kNotFound && missing.Test(i)) {
              ++covers_new;
            }
          }
          if (covers_new == 0) continue;
          double marginal = offer.props.total_time_ms / covers_new;
          if (round_peer == nullptr || marginal < round_marginal) {
            round_peer = &reply.seller;
            round_reply = ri;
            round_index = oi;
            round_marginal = marginal;
          }
        }
      }
      if (round_peer == nullptr) break;  // nobody can extend the cover
      std::string peer_name = *round_peer;
      keepalive.push_back(std::move(replies[round_reply].offers));
      const Offer* chosen = &keepalive.back()[round_index];
      bought.emplace_back(std::move(peer_name), chosen);
      bought_cost += chosen->props.total_time_ms;
      bought_rows += chosen->props.rows;
      for (const auto& pid :
           chosen->FindCoverage(cov.alias)->partitions) {
        const size_t i = part_index.Find(pid);
        if (i != PartitionIndex::kNotFound) missing.Clear(i);
      }
    }
    cover_span.Attr("bought", static_cast<int64_t>(bought.size()));
    cover_span.Attr("covered", static_cast<int64_t>(missing.Any() ? 0 : 1));
    if (missing.Any() || bought.empty()) continue;

    // Our own part of the relation, as a single-alias slice.
    std::map<std::string, std::set<std::string>> own_box;
    own_box[cov.alias] = {cov.scanned_partitions.begin(),
                          cov.scanned_partitions.end()};
    sql::SelectStmt own_stmt = BuildRestrictedSubsetQuery(
        asked, {cov.alias}, own_box, federation);
    auto own_bound = sql::AnalyzeSql(sql::ToSql(own_stmt), *catalog_);
    if (!own_bound.ok()) continue;

    // Price: our scan + transfer of our rows, plus the purchased slices'
    // quotes, plus re-shipping the purchased rows to the final buyer.
    std::optional<TableStats> own_stats;
    for (const auto& pid : cov.scanned_partitions) {
      const TableStats* part = catalog_->PartitionStats(pid);
      if (part == nullptr) continue;
      own_stats = own_stats.has_value()
                      ? TableStats::MergeDisjoint(*own_stats, *part)
                      : *part;
    }
    if (!own_stats.has_value()) continue;
    std::vector<sql::ExprPtr> local = asked.LocalPredicates(cov.alias);
    double sel = EstimateConjunctSelectivity(local, *own_stats);
    double own_rows = own_stats->row_count * sel;
    TupleSchema schema = own_bound->OutputSchema();
    double row_bytes = EstimateRowBytes(schema);
    double own_exec = cost.ScanCost(own_stats->row_count, row_bytes,
                                    static_cast<int>(local.size()));
    double resell = cost.TransferCost(bought_rows, row_bytes);
    double true_cost = own_exec +
                       cost.TransferCost(own_rows, row_bytes) +
                       bought_cost + resell;

    Offer combined;
    // Deterministic, transport-safe id: one combined offer per
    // (rfb, alias) at most.
    combined.offer_id = name() + ":sub:" + rfb.rfb_id + "#" + cov.alias;
    combined.seller = name();
    combined.rfb_id = rfb.rfb_id;
    combined.kind = OfferKind::kCoreRows;
    // The combined offer promises the union of both slices.
    std::map<std::string, std::set<std::string>> full_box = own_box;
    for (const auto& pid : MaskToIds(initial_missing, part_index)) {
      full_box[cov.alias].insert(pid);
    }
    // Provably-empty partitions stay covered for free.
    std::set<std::string> combined_cov = full_box[cov.alias];
    for (const auto& pid : cov.covered_partitions) {
      combined_cov.insert(pid);
    }
    combined.query = BuildRestrictedSubsetQuery(asked, {cov.alias},
                                                full_box, federation);
    combined.schema = schema;
    combined.coverage.push_back(
        {cov.alias, cov.table,
         std::vector<std::string>(combined_cov.begin(),
                                  combined_cov.end())});
    combined.row_bytes = row_bytes;
    combined.props.rows = own_rows + bought_rows;
    combined.props.first_row_ms = cost.params().net_latency_ms * 2;
    combined.props.completeness =
        static_cast<double>(combined_cov.size()) /
        partitioning->partitions.size();

    OfferRecord record;
    record.true_cost = true_cost;
    record.exec_query = std::move(*own_bound);
    record.scan_partitions[cov.alias] = cov.scanned_partitions;
    for (const auto& [peer, chosen] : bought) {
      record.subcontracts.emplace_back(peer, chosen->offer_id);
    }
    QuoteContext ctx;
    bool has_ctx = false;
    if (wants_context_) {
      auto combined_bound =
          sql::AnalyzeSql(sql::ToSql(combined.query), *catalog_);
      if (combined_bound.ok()) {
        ctx = BuildQuoteContext(*combined_bound, combined.coverage);
        has_ctx = true;
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (has_ctx) {
        ctx.true_cost_ms = true_cost;
        combined.props.total_time_ms = strategy_->QuoteWithContext(ctx);
      } else {
        combined.props.total_time_ms = strategy_->Quote(true_cost);
      }
      combined.props.price = combined.props.total_time_ms - true_cost;
      record.offer = combined;
      RecordOfferLocked(rfb.rfb_id, std::move(record));
    }
    subcontracted_offers_.fetch_add(1, std::memory_order_relaxed);
    out->push_back(std::move(combined));
  }
}

std::optional<Offer> SellerEngine::OnAuctionTick(const AuctionTick& tick) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = offers_by_rfb_.find(tick.rfb_id);
  if (it == offers_by_rfb_.end()) return std::nullopt;
  // Improve our cheapest comparable offer (same alias-set signature) if
  // it is currently losing and there is margin left to give.
  OfferRecord* best = nullptr;
  for (const auto& offer_id : it->second) {
    auto rit = records_.find(offer_id);
    if (rit == records_.end()) continue;
    if (rit->second.offer.CoverageSignature() != tick.signature) continue;
    if (best == nullptr ||
        rit->second.offer.props.total_time_ms <
            best->offer.props.total_time_ms) {
      best = &rit->second;
    }
  }
  if (best == nullptr) return std::nullopt;
  double current = best->offer.props.total_time_ms;
  if (current <= tick.best_score + 1e-9) return std::nullopt;  // winning
  double reservation = strategy_->ReservationValue(best->true_cost);
  if (reservation >= tick.best_score) return std::nullopt;  // cannot beat
  double new_quote = std::max(reservation, tick.best_score * 0.98);
  if (new_quote >= current - 1e-9) return std::nullopt;
  best->offer.props.total_time_ms = new_quote;
  best->offer.props.price = new_quote - best->true_cost;
  return best->offer;
}

std::optional<Offer> SellerEngine::OnCounterOffer(const std::string& rfb_id,
                                                  const std::string& signature,
                                                  double target_value) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = offers_by_rfb_.find(rfb_id);
  if (it == offers_by_rfb_.end()) return std::nullopt;
  OfferRecord* best = nullptr;
  for (const auto& offer_id : it->second) {
    auto rit = records_.find(offer_id);
    if (rit == records_.end()) continue;
    if (rit->second.offer.CoverageSignature() != signature) continue;
    if (best == nullptr ||
        rit->second.offer.props.total_time_ms <
            best->offer.props.total_time_ms) {
      best = &rit->second;
    }
  }
  if (best == nullptr) return std::nullopt;
  double current = best->offer.props.total_time_ms;
  if (current <= target_value) return std::nullopt;  // already acceptable
  double reservation = strategy_->ReservationValue(best->true_cost);
  if (target_value < reservation) return std::nullopt;  // hold firm
  best->offer.props.total_time_ms = target_value;
  best->offer.props.price = target_value - best->true_cost;
  return best->offer;
}

void SellerEngine::OnAwards(const std::vector<Award>& awards,
                            const std::vector<std::string>& lost_offer_ids) {
  std::lock_guard<std::mutex> lock(mu_);
  // Realized margin of the decisive offer — what the strategy actually
  // priced above (or at) its honest estimate.
  auto margin_of = [this](const std::string& offer_id) {
    auto it = records_.find(offer_id);
    if (it == records_.end() || it->second.true_cost <= 0) return 0.0;
    return (it->second.offer.props.total_time_ms - it->second.true_cost) /
           it->second.true_cost;
  };
  for (const auto& award : awards) {
    if (records_.count(award.offer_id) > 0) {
      TradeOutcome outcome;
      outcome.won = true;
      outcome.realized_margin = margin_of(award.offer_id);
      strategy_->OnTradeOutcome(outcome);
      return;
    }
  }
  for (const auto& id : lost_offer_ids) {
    if (records_.count(id) > 0) {
      TradeOutcome outcome;
      outcome.won = false;
      outcome.realized_margin = margin_of(id);
      strategy_->OnTradeOutcome(outcome);
      return;
    }
  }
}

Result<RowSet> SellerEngine::ExecuteOffer(const std::string& offer_id) {
  if (!cost_feedback_.load(std::memory_order_relaxed)) {
    // Feedback off: no clock reads, no observation state — the call is
    // bit-for-bit the pre-feedback engine.
    return ExecuteOfferImpl(offer_id);
  }
  const auto t0 = std::chrono::steady_clock::now();
  auto rows = ExecuteOfferImpl(offer_id);
  if (rows.ok()) {
    const double elapsed_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    ObserveDeliveryCost(offer_id, elapsed_ms);
  }
  return rows;
}

void SellerEngine::ObserveDeliveryCost(const std::string& offer_id,
                                       double elapsed_ms) {
  if (!cost_feedback_.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = records_.find(offer_id);
  if (it == records_.end()) return;
  const std::string signature = it->second.offer.CoverageSignature();
  auto [obs, inserted] = observed_cost_ms_.try_emplace(signature, elapsed_ms);
  if (!inserted) obs->second = 0.5 * obs->second + 0.5 * elapsed_ms;
}

Status SellerEngine::HandleExecuteOfferChunked(const std::string& offer_id,
                                               size_t chunk_rows,
                                               const RowSink& sink) {
  if (chunk_rows == 0) chunk_rows = 1;
  const bool feedback = cost_feedback_.load(std::memory_order_relaxed);
  const auto t0 = std::chrono::steady_clock::now();
  const OfferRecord* record = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = records_.find(offer_id);
    if (it != records_.end()) record = &it->second;
  }
  // Anything the columnar pipeline cannot run incrementally — view
  // extents, subcontract unions, joins, aggregation/DISTINCT/ORDER
  // BY/LIMIT, or a predicate the vectorized filter cannot prove
  // error-free — goes through the base-class materialize-and-slice
  // path, so the concatenated stream equals ExecuteOffer's answer
  // (errors included) for every offer shape.
  auto fallback = [&]() -> Status {
    return NodeEndpoint::HandleExecuteOfferChunked(offer_id, chunk_rows,
                                                   sink);
  };
  if (record == nullptr || store_ == nullptr || !record->view_name.empty() ||
      !record->subcontracts.empty()) {
    return fallback();
  }
  const sql::BoundQuery& q = record->exec_query;
  if (q.tables.size() != 1 || q.has_aggregates || !q.group_by.empty() ||
      q.distinct || !q.order_by.empty() || q.limit.has_value()) {
    return fallback();
  }
  const sql::TableRef& tref = q.tables[0];
  auto pit = record->scan_partitions.find(tref.alias);
  if (pit == record->scan_partitions.end() || pit->second.empty()) {
    return fallback();
  }
  std::vector<const store::ChunkedTable*> parts;
  parts.reserve(pit->second.size());
  for (const auto& pid : pit->second) {
    const store::ChunkedTable* part = store_->Chunked(pid);
    if (part == nullptr) return fallback();  // same missing-partition error
    parts.push_back(part);
  }
  // The scan output schema ExecuteBoundQuery's resolver produces:
  // partition columns qualified by the FROM alias.
  TupleSchema scan_schema;
  for (const auto& col : parts[0]->schema().columns()) {
    scan_schema.AddColumn({tref.alias, col.name, col.type});
  }
  // All WHERE conjuncts in one filter. ExecuteBoundQuery applies the
  // local conjuncts and then re-applies every conjunct; for a
  // deterministic error-free predicate the two passes keep exactly the
  // rows where all conjuncts are true, which is what one combined pass
  // computes. Predicates that could error are sent to the fallback so
  // the error (and its order) matches the reference path.
  std::vector<sql::ExprPtr> all;
  all.reserve(q.conjuncts.size());
  for (const auto& conj : q.conjuncts) all.push_back(conj.expr);
  sql::ExprPtr pred_expr = sql::AndAll(all);
  vec::CompiledPredicate pred =
      vec::CompiledPredicate::Compile(pred_expr, scan_schema);
  if (!pred.always_true() && !pred.simple()) return fallback();

  RowSet chunk;
  chunk.schema = vec::ProjectionSchema(q.outputs);
  bool emitted = false;
  vec::SelectionVector sel;
  for (const store::ChunkedTable* part : parts) {
    for (size_t c = 0; c < part->num_chunks(); ++c) {
      if (pred.CanSkipChunk(*part, c)) continue;
      sel.clear();
      QTRADE_RETURN_IF_ERROR(pred.FilterChunk(*part, c, &sel));
      if (sel.empty()) continue;
      QTRADE_RETURN_IF_ERROR(
          vec::ProjectChunk(*part, c, sel, scan_schema, q.outputs, &chunk));
      // Emit every full chunk_rows slice; the remainder rides along to
      // pick up rows from the next chunk (or flushes at the end), so
      // chunk boundaries never depend on zone-map skips.
      size_t start = 0;
      while (chunk.rows.size() - start >= chunk_rows) {
        RowSet out;
        out.schema = chunk.schema;
        out.rows.assign(
            std::make_move_iterator(chunk.rows.begin() + start),
            std::make_move_iterator(chunk.rows.begin() + start + chunk_rows));
        QTRADE_RETURN_IF_ERROR(sink(out));
        emitted = true;
        start += chunk_rows;
      }
      if (start > 0) {
        chunk.rows.erase(chunk.rows.begin(),
                         chunk.rows.begin() + static_cast<ptrdiff_t>(start));
      }
    }
  }
  if (!chunk.rows.empty() || !emitted) {
    QTRADE_RETURN_IF_ERROR(sink(chunk));
  }
  streamed_deliveries_.fetch_add(1, std::memory_order_relaxed);
  if (feedback) {
    const double elapsed_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    ObserveDeliveryCost(offer_id, elapsed_ms);
  }
  return Status::OK();
}

Result<RowSet> SellerEngine::ExecuteOfferImpl(const std::string& offer_id) {
  const OfferRecord* record = nullptr;
  {
    // std::map nodes are stable and records are never erased, so the
    // pointer stays valid after the lock is released.
    std::lock_guard<std::mutex> lock(mu_);
    auto it = records_.find(offer_id);
    if (it != records_.end()) record = &it->second;
  }
  if (record == nullptr) {
    return Status::NotFound("unknown offer: " + offer_id);
  }
  if (store_ == nullptr) {
    return Status::InvalidArgument("node has no storage attached");
  }
  if (!record->view_name.empty()) {
    const RowSet* extent = store_->View(record->view_name);
    if (extent == nullptr) {
      return Status::NotFound("view extent missing: " + record->view_name);
    }
    // Bind the compensation against the view-extent schema.
    const MaterializedViewDef* view = nullptr;
    for (const auto& v : catalog_->views()) {
      if (v.name == record->view_name) view = &v;
    }
    if (view == nullptr) {
      return Status::NotFound("view definition missing: " +
                              record->view_name);
    }
    SimpleSchemaProvider schemas;
    schemas.AddTable(ViewExtentSchema(*view));
    QTRADE_ASSIGN_OR_RETURN(
        sql::BoundQuery comp,
        sql::Analyze(record->view_compensation, schemas));
    TableResolver resolver = [&](const sql::TableRef& tref)
        -> Result<RowSet> {
      RowSet rows;
      for (const auto& col : extent->schema.columns()) {
        rows.schema.AddColumn({tref.alias, col.name, col.type});
      }
      rows.rows = extent->rows;
      return rows;
    };
    return ExecuteBoundQuery(comp, resolver);
  }
  TableResolver resolver = [&](const sql::TableRef& tref) -> Result<RowSet> {
    auto pit = record->scan_partitions.find(tref.alias);
    if (pit == record->scan_partitions.end() || pit->second.empty()) {
      return Status::Internal("no scan recipe for alias " + tref.alias);
    }
    return store_->ScanPartitions(pit->second, tref.alias);
  };
  QTRADE_ASSIGN_OR_RETURN(RowSet own,
                          ExecuteBoundQuery(record->exec_query, resolver));
  // §3.5 subcontracting: fetch the purchased sub-answers from their
  // sellers through the transport and append them.
  for (const auto& [peer_name, sub_offer_id] : record->subcontracts) {
    NodeEndpoint* peer =
        transport_ != nullptr ? transport_->endpoint(peer_name) : nullptr;
    if (peer == nullptr) {
      return Status::Internal("subcontract peer unreachable: " + peer_name);
    }
    QTRADE_ASSIGN_OR_RETURN(RowSet bought,
                            peer->HandleExecuteOffer(sub_offer_id));
    QTRADE_ASSIGN_OR_RETURN(RowSet aligned, ProjectTo(own.schema, bought));
    own.rows.insert(own.rows.end(),
                    std::make_move_iterator(aligned.rows.begin()),
                    std::make_move_iterator(aligned.rows.end()));
  }
  return own;
}

Result<double> SellerEngine::TrueCost(const std::string& offer_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = records_.find(offer_id);
  if (it == records_.end()) {
    return Status::NotFound("unknown offer: " + offer_id);
  }
  return it->second.true_cost;
}

void SellerEngine::CollectStats(
    std::vector<std::pair<std::string, std::string>>* out) const {
  const OfferCacheStats cache = generator_.cache_stats();
  const int64_t lookups = cache.hits + cache.misses;
  char ratio[32];
  std::snprintf(ratio, sizeof(ratio), "%.4f",
                lookups > 0 ? static_cast<double>(cache.hits) /
                                  static_cast<double>(lookups)
                            : 0.0);
  auto put = [out](const char* key, int64_t value) {
    out->emplace_back(key, std::to_string(value));
  };
  put("seller.rfbs_seen", rfbs_seen());
  put("seller.subcontracted_offers", subcontracted_offers());
  put("seller.streamed_deliveries", streamed_deliveries());
  put("seller.cost_feedback", cost_feedback() ? 1 : 0);
  {
    std::lock_guard<std::mutex> lock(mu_);
    put("seller.cost_observations",
        static_cast<int64_t>(observed_cost_ms_.size()));
    const StrategyStats strat = strategy_->Stats();
    out->emplace_back("strategy.name", strategy_->name());
    put("strategy.quotes", strat.quotes);
    put("strategy.clamped", strat.clamped);
    put("strategy.pinned", strat.pinned);
    put("strategy.wins", strat.wins);
    put("strategy.losses", strat.losses);
    char margin[32];
    std::snprintf(margin, sizeof(margin), "%.4f", strat.margin);
    out->emplace_back("strategy.margin", margin);
  }
  put("seller.offer_generate_ns", offer_generate_ns());
  put("seller.dp_threads", dp_threads());
  put("cache.capacity", static_cast<int64_t>(offer_cache_capacity()));
  put("cache.size", static_cast<int64_t>(generator_.cache_size()));
  put("cache.hits", cache.hits);
  put("cache.misses", cache.misses);
  put("cache.evictions", cache.evictions);
  put("cache.invalidations", cache.invalidations);
  put("cache.lock_waits", cache.lock_waits);
  out->emplace_back("cache.hit_ratio", ratio);
}

}  // namespace qtrade
