#include "trading/buyer_engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>

#include "opt/signature.h"
#include "util/logging.h"

namespace qtrade {

namespace {

double WallMs(std::chrono::steady_clock::time_point start) {
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

/// One tag per BuyerEngine ever constructed in this process.
std::atomic<int64_t> g_engine_counter{0};

/// Identity of a traded subquery for intra-round RFB dedup: canonical
/// signature (normalizes predicate order and literal spelling) plus the
/// concrete alias list and ask box. Equal keys mean the same commodity
/// requested under the same alias naming, so one broadcast's offers
/// serve both consumers.
std::string TradedQueryKey(const TradedQuery& traded,
                           const NodeCatalog& catalog) {
  std::string key;
  const std::string sql_text = sql::ToSql(traded.stmt);
  auto bound = sql::AnalyzeSql(sql_text, catalog);
  if (bound.ok()) {
    const QuerySignature sig = CanonicalSignature(*bound);
    key = sig.text;
    for (const auto& alias : sig.aliases) {
      key += "|";
      key += alias;
    }
  } else {
    key = sql_text;  // still collapses byte-identical duplicates
  }
  key += "#";
  for (const auto& [alias, parts] : traded.ask_box) {
    key += alias;
    key += "=";
    for (const auto& pid : parts) {
      key += pid;
      key += ",";
    }
    key += ";";
  }
  return key;
}

}  // namespace

const char* NegotiationProtocolName(NegotiationProtocol protocol) {
  switch (protocol) {
    case NegotiationProtocol::kBidding: return "bidding";
    case NegotiationProtocol::kAuction: return "auction";
    case NegotiationProtocol::kBargaining: return "bargaining";
  }
  return "?";
}

BuyerEngine::BuyerEngine(NodeCatalog* catalog, const PlanFactory* factory,
                         Transport* transport,
                         std::vector<std::string> sellers,
                         QtOptions options,
                         std::unique_ptr<BuyerStrategy> strategy)
    : catalog_(catalog),
      factory_(factory),
      transport_(transport),
      sellers_(std::move(sellers)),
      options_(options),
      strategy_(std::move(strategy)),
      engine_tag_(g_engine_counter.fetch_add(1, std::memory_order_relaxed)) {
  if (!strategy_) strategy_ = std::make_unique<DefaultBuyerStrategy>();
}

std::vector<std::string> BuyerEngine::PickSellers(Rng* rng) const {
  if (options_.rfb_fanout == 0 || options_.rfb_fanout >= sellers_.size()) {
    return sellers_;
  }
  std::vector<std::string> picked;
  for (size_t idx : rng->Sample(sellers_.size(), options_.rfb_fanout)) {
    picked.push_back(sellers_[idx]);
  }
  return picked;
}

void BuyerEngine::ClipOffer(
    Offer* offer,
    const std::map<std::string, std::set<std::string>>& box) const {
  if (box.empty()) return;
  for (auto& cov : offer->coverage) {
    auto it = box.find(cov.alias);
    if (it == box.end()) continue;
    std::vector<std::string> kept;
    for (const auto& pid : cov.partitions) {
      if (it->second.count(pid) > 0) kept.push_back(pid);
    }
    cov.partitions = std::move(kept);
  }
}

Status BuyerEngine::TradeQuery(const TradedQuery& traded, Rng* rng,
                               std::vector<Offer>* pool,
                               TradeMetrics* metrics, obs::SpanRef parent) {
  obs::Span span = obs::Tracer::Active(tracer_)
                       ? tracer_->StartSpan("rfb_broadcast", parent)
                       : obs::Span();
  span.Node(catalog_->node_name());
  span.Attr("rfb_id", traded.rfb_id);

  Rfb rfb;
  rfb.rfb_id = traded.rfb_id;
  rfb.buyer = catalog_->node_name();
  rfb.sql = sql::ToSql(traded.stmt);
  rfb.reserve_value =
      strategy_->Reserve(traded.rfb_id, traded.estimated_value);
  // Trace context: sellers parent their offer_gen spans here even when
  // the transport runs them on worker threads — in-process via the
  // legacy payload fields, across processes via the v3 header context.
  rfb.trace_parent = span.id();
  rfb.trace_round = span.ref().round;
  rfb.negotiation_id = negotiation_id_;
  rfb.trace.trace_id = span.ref().trace_id;
  rfb.trace.parent_span = span.id();
  ask_box_by_rfb_[traded.rfb_id] = traded.ask_box;

  std::vector<std::string> contacted = PickSellers(rng);
  std::vector<OfferReply> replies =
      transport_->BroadcastRfb(rfb.buyer, rfb, contacted);
  metrics->rfbs_sent += static_cast<int64_t>(contacted.size());

  // Deadline policy: the round lasts until the slowest accepted reply —
  // or until the deadline, with later offers discarded as late.
  const double deadline = options_.offer_timeout_ms;
  double round_time = 0;
  bool timed_out = false;
  int64_t accepted = 0;
  for (auto& reply : replies) {
    if (!reply.ok) continue;  // seller never answered (transport logged it)
    if (reply.dropped) {
      metrics->offers_dropped += reply.dropped_offers;
      if (metrics_ != nullptr) {
        metrics_->counter("seller." + reply.seller + ".offers_dropped")
            ->Add(reply.dropped_offers);
      }
      continue;  // lost in transit: contributes nothing to the round
    }
    if (reply.duplicated) {
      // At-least-once redelivery of a reply we already consumed.
      metrics->offers_duplicated +=
          static_cast<int64_t>(reply.offers.size());
      continue;
    }
    if (deadline > 0 && reply.arrival_ms > deadline) {
      metrics->offers_late += static_cast<int64_t>(reply.offers.size());
      if (metrics_ != nullptr) {
        metrics_->counter("seller." + reply.seller + ".offers_late")
            ->Add(static_cast<int64_t>(reply.offers.size()));
      }
      timed_out = true;
      continue;
    }
    round_time = std::max(round_time, reply.arrival_ms);
    for (auto& offer : reply.offers) {
      ClipOffer(&offer, traded.ask_box);
      pool->push_back(std::move(offer));
      ++metrics->offers_received;
      ++accepted;
    }
  }
  if (timed_out) {
    // The buyer waited the full deadline before giving up on stragglers.
    round_time = deadline;
    ++metrics->rounds_timed_out;
  }
  transport_->AdvanceRound(round_time);
  span.Attr("sellers", static_cast<int64_t>(contacted.size()));
  span.Attr("offers", accepted);
  span.Attr("round_ms", round_time);
  return Status::OK();
}

void BuyerEngine::RunNestedNegotiation(std::vector<Offer>* pool,
                                       TradeMetrics* metrics,
                                       obs::SpanRef parent) {
  if (options_.protocol == NegotiationProtocol::kBidding) return;
  if (pool->empty()) return;
  obs::Span span = obs::Tracer::Active(tracer_)
                       ? tracer_->StartSpan("rank_offers", parent)
                       : obs::Span();
  span.Node(catalog_->node_name());
  span.Attr("protocol", NegotiationProtocolName(options_.protocol));
  span.Attr("pool", static_cast<int64_t>(pool->size()));

  // Offers are price-comparable within one (rfb, alias-set signature)
  // group: a one-table answer and a full-join answer for the same RFB are
  // different commodities.
  using GroupKey = std::pair<std::string, std::string>;
  auto best_quote_for = [&](const GroupKey& group) {
    double best = std::numeric_limits<double>::infinity();
    for (const auto& offer : *pool) {
      if (offer.rfb_id == group.first &&
          offer.CoverageSignature() == group.second) {
        best = std::min(best, options_.valuation.Score(offer.props));
      }
    }
    return best;
  };
  std::set<GroupKey> groups;
  for (const auto& offer : *pool) {
    groups.insert({offer.rfb_id, offer.CoverageSignature()});
  }

  auto apply_update = [&](const Offer& updated) {
    for (auto& offer : *pool) {
      if (offer.offer_id == updated.offer_id) {
        offer.props = updated.props;
        return;
      }
    }
  };

  const std::string& buyer = catalog_->node_name();

  if (options_.protocol == NegotiationProtocol::kAuction) {
    for (int round = 0; round < options_.max_auction_rounds; ++round) {
      bool improved = false;
      double round_time = 0;
      for (const auto& group : groups) {
        AuctionTick tick{group.first, group.second, best_quote_for(group),
                         negotiation_id_};
        tick.trace.trace_id = span.ref().trace_id;
        tick.trace.parent_span = span.id();
        // Announce to every seller that bid in this group.
        std::set<std::string> bidders;
        for (const auto& offer : *pool) {
          if (offer.rfb_id == group.first &&
              offer.CoverageSignature() == group.second) {
            bidders.insert(offer.seller);
          }
        }
        for (const auto& name : bidders) {
          TickReply reply = transport_->SendAuctionTick(buyer, name, tick);
          if (reply.updated.has_value()) {
            apply_update(*reply.updated);
            improved = true;
          }
          round_time = std::max(round_time, reply.elapsed_ms);
        }
      }
      transport_->AdvanceRound(round_time);
      ++metrics->auction_rounds;
      if (!improved) break;
    }
    return;
  }

  // Bargaining: per traded query, push the best bidder down with
  // counter-offers.
  for (int round = 0; round < options_.max_bargain_rounds; ++round) {
    bool movement = false;
    double round_time = 0;
    for (const auto& group : groups) {
      // Find current best offer of this comparable group.
      const Offer* best = nullptr;
      for (const auto& offer : *pool) {
        if (offer.rfb_id != group.first ||
            offer.CoverageSignature() != group.second) {
          continue;
        }
        if (best == nullptr || options_.valuation.Score(offer.props) <
                                   options_.valuation.Score(best->props)) {
          best = &offer;
        }
      }
      if (best == nullptr) continue;
      double quote = best->props.total_time_ms;
      double counter = strategy_->CounterOffer(quote, round);
      if (counter >= quote) continue;  // buyer accepts as-is
      CounterOffer msg{group.first, group.second, counter, negotiation_id_};
      msg.trace.trace_id = span.ref().trace_id;
      msg.trace.parent_span = span.id();
      TickReply reply =
          transport_->SendCounterOffer(buyer, best->seller, msg);
      if (reply.updated.has_value()) {
        apply_update(*reply.updated);
        movement = true;
      }
      if (getenv("QT_DEBUG_POOL")) {
        fprintf(stderr,
                "BARGAIN rfb=%s sig=%.40s quote=%.2f counter=%.2f -> %s\n",
                group.first.c_str(), group.second.c_str(), quote, counter,
                reply.updated.has_value() ? "accepted" : "held");
      }
      round_time = std::max(round_time, reply.elapsed_ms);
    }
    transport_->AdvanceRound(round_time);
    ++metrics->bargain_rounds;
    if (!movement) break;
  }
}

Result<QtResult> BuyerEngine::Optimize(const std::string& sql) {
  auto wall_start = std::chrono::steady_clock::now();
  SimNetwork* network = transport_->network();
  // The network is shared across optimizations; report deltas.
  const int64_t start_messages = network->total().messages;
  const int64_t start_bytes = network->total().bytes;
  const double start_clock = network->now_ms();
  QTRADE_ASSIGN_OR_RETURN(sql::BoundQuery original,
                          sql::AnalyzeSql(sql, *catalog_));

  // Sampling: trace every Nth negotiation (metrics stay exact — only the
  // tracer is toggled, counters are registry-owned and never sampled).
  if (tracer_ != nullptr) {
    const int period = std::max(1, options_.obs.trace_sample_period);
    tracer_->set_enabled(optimize_count_ % period == 0);
  }
  Rng rng(options_.seed + optimize_count_);
  const std::string run_tag =
      catalog_->node_name() + "#" +
      (options_.run_label.empty() ? std::to_string(engine_tag_)
                                  : options_.run_label) +
      "/" + std::to_string(optimize_count_++);
  // Channel for this run: every envelope we send below carries it in its
  // frame header, so servers and pooled client connections can multiplex
  // this negotiation among hundreds of concurrent ones.
  negotiation_id_ = AllocateNegotiationId();
  obs::Span neg_span = obs::Tracer::Active(tracer_)
                           ? tracer_->StartSpan("negotiation")
                           : obs::Span();
  neg_span.Negotiation(negotiation_id_);
  neg_span.Node(catalog_->node_name());
  neg_span.Attr("buyer", catalog_->node_name());
  neg_span.Attr("protocol", NegotiationProtocolName(options_.protocol));
  neg_span.Attr("run_tag", run_tag);
  neg_span.Attr("sql", sql);
  QtResult result;
  result.sql = sql;
  result.negotiation_id = negotiation_id_;
  BuyerAnalyser analyser(&original, &catalog_->federation());
  // The buyer's §3.1 weighting function prices purchased answers inside
  // the plan generator too.
  options_.assembler.valuation = options_.valuation;
  options_.assembler.dp_threads = options_.dp_threads;
  PlanAssembler assembler(&original, &catalog_->federation(), factory_,
                          options_.assembler);

  std::vector<Offer> pool;
  std::set<std::string> asked_sql;
  std::vector<TradedQuery> to_trade;
  {
    TradedQuery root;
    root.rfb_id = run_tag + ":q0";
    root.stmt = original.ToStmt();
    root.estimated_value = options_.initial_value;
    to_trade.push_back(std::move(root));
    asked_sql.insert(sql::ToSql(to_trade.front().stmt));
  }

  std::vector<CandidatePlan> best_candidates;
  for (int iteration = 0; iteration < options_.max_iterations; ++iteration) {
    if (to_trade.empty()) break;
    // Formatted span names only materialize when a trace is being taken.
    obs::Span round_span;
    if (obs::Tracer::Active(tracer_)) {
      round_span = tracer_->StartSpan(
          "round[" + std::to_string(iteration) + "]", neg_span.ref());
      round_span.Round(iteration);
      round_span.Node(catalog_->node_name());
      round_span.Attr("queries", static_cast<int64_t>(to_trade.size()));
    }
    // Collapse duplicate subqueries within this round's working set: the
    // analyser can propose the same commodity twice (predicate-order or
    // literal-spelling variants of one query). One broadcast serves all
    // of them. Unconditional — message counts stay identical whether or
    // not sellers memoize offers.
    if (to_trade.size() > 1) {
      std::set<std::string> seen;
      std::vector<TradedQuery> unique;
      unique.reserve(to_trade.size());
      for (auto& traded : to_trade) {
        if (seen.insert(TradedQueryKey(traded, *catalog_)).second) {
          unique.push_back(std::move(traded));
        } else {
          ++result.metrics.rfbs_deduped;
        }
      }
      to_trade = std::move(unique);
    }
    // B1/B2/S1/S2: request bids for the working set Q.
    for (const auto& traded : to_trade) {
      QTRADE_RETURN_IF_ERROR(TradeQuery(traded, &rng, &pool,
                                        &result.metrics, round_span.ref()));
    }
    // B3/S3: nested negotiation.
    RunNestedNegotiation(&pool, &result.metrics, round_span.ref());
    if (getenv("QT_DEBUG_POOL")) {
      for (const auto& o : pool)
        fprintf(stderr, "POOL %s sig=%s quote=%.2f\n", o.offer_id.c_str(),
                o.CoverageSignature().c_str(), o.props.total_time_ms);
    }

    // B4: candidate plans from all offers gathered so far.
    std::vector<CandidatePlan> candidates;
    {
      obs::Span span = obs::Tracer::Active(tracer_)
                           ? tracer_->StartSpan("plan_assemble",
                                                round_span.ref())
                           : obs::Span();
      span.Node(catalog_->node_name());
      QTRADE_ASSIGN_OR_RETURN(candidates,
                              assembler.Assemble(pool, tracer_, span.ref()));
      span.Attr("candidates", static_cast<int64_t>(candidates.size()));
      span.Attr("blocks_created",
                static_cast<int64_t>(assembler.stats().blocks_created));
      span.Attr("joins_considered",
                static_cast<int64_t>(assembler.stats().joins_considered));
      span.Attr("unions_considered",
                static_cast<int64_t>(assembler.stats().unions_considered));
    }
    ++result.metrics.iterations;
    result.iterations = result.metrics.iterations;

    bool improved = false;
    if (!candidates.empty() && candidates.front().cost < result.cost) {
      result.cost = candidates.front().cost;
      result.plan = candidates.front().plan;
      best_candidates = candidates;
      improved = true;
    }
    result.cost_per_iteration.push_back(result.cost);

    if (candidates.empty() && result.plan == nullptr) {
      // Fig. 2 aborts when the first iteration yields no candidate plan —
      // but when trader selection (bounded fan-out) limited who we asked,
      // widen the net and retry before giving up.
      if (options_.rfb_fanout > 0 &&
          options_.rfb_fanout < sellers_.size()) {
        options_.rfb_fanout =
            std::min(options_.rfb_fanout * 4, sellers_.size());
        TradedQuery retry;
        retry.rfb_id = run_tag + ":q0r" + std::to_string(iteration);
        retry.stmt = original.ToStmt();
        retry.estimated_value = options_.initial_value;
        to_trade.clear();
        to_trade.push_back(std::move(retry));
        continue;
      }
      break;
    }

    // B5/B6: predicates analyser proposes the next working set.
    to_trade = analyser.Analyse(pool, candidates, asked_sql, iteration + 1);
    for (auto& traded : to_trade) {
      traded.rfb_id = run_tag + ":" + traded.rfb_id;
      asked_sql.insert(sql::ToSql(traded.stmt));
    }
    // B7: stop on no improvement (after the first round) or no new work.
    if (!improved && iteration > 0) break;
  }

  if (result.plan == nullptr) {
    result.metrics.messages = network->total().messages - start_messages;
    result.metrics.bytes = network->total().bytes - start_bytes;
    result.metrics.sim_elapsed_ms = network->now_ms() - start_clock;
    result.metrics.wall_opt_ms = WallMs(wall_start);
    result.offer_pool = std::move(pool);
    return result;  // failed optimization: caller checks ok()
  }

  // B8 + awards: notify winners (and losers, for strategy learning).
  std::set<std::string> winning_ids(
      // offer ids actually purchased by the final plan
      [&] {
        std::set<std::string> ids;
        for (const PlanNode* remote : CollectRemotes(result.plan)) {
          ids.insert(remote->offer_id);
        }
        return ids;
      }());
  std::map<std::string, std::vector<Award>> awards_by_seller;
  std::map<std::string, std::vector<std::string>> lost_by_seller;
  for (const auto& offer : pool) {
    if (winning_ids.count(offer.offer_id) > 0) {
      awards_by_seller[offer.seller].push_back(
          {offer.rfb_id, offer.offer_id});
      result.winning_offers.push_back(offer);
    } else {
      lost_by_seller[offer.seller].push_back(offer.offer_id);
    }
  }
  {
    obs::Span award_span = obs::Tracer::Active(tracer_)
                               ? tracer_->StartSpan("award", neg_span.ref())
                               : obs::Span();
    award_span.Node(catalog_->node_name());
    double award_time = 0;
    for (const std::string& seller : sellers_) {
      auto awards = awards_by_seller.find(seller);
      auto lost = lost_by_seller.find(seller);
      if (awards == awards_by_seller.end() && lost == lost_by_seller.end()) {
        continue;
      }
      AwardBatch batch;
      batch.negotiation_id = negotiation_id_;
      batch.trace.trace_id = award_span.ref().trace_id;
      batch.trace.parent_span = award_span.id();
      if (awards != awards_by_seller.end()) batch.awards = awards->second;
      if (lost != lost_by_seller.end()) batch.lost_offer_ids = lost->second;
      double t = transport_->SendAwards(catalog_->node_name(), seller, batch);
      if (!batch.awards.empty()) {
        result.metrics.awards_sent +=
            static_cast<int64_t>(batch.awards.size());
      }
      award_time = std::max(award_time, t);
    }
    transport_->AdvanceRound(award_time);
    award_span.Attr("winners",
                    static_cast<int64_t>(result.winning_offers.size()));
  }

  result.metrics.messages = network->total().messages - start_messages;
  result.metrics.bytes = network->total().bytes - start_bytes;
  result.metrics.sim_elapsed_ms = network->now_ms() - start_clock;
  result.metrics.wall_opt_ms = WallMs(wall_start);
  // Winners AND losers: execution-time award recovery substitutes from
  // the ranked losers when a winning seller fails to deliver.
  result.offer_pool = std::move(pool);
  neg_span.Attr("iterations", static_cast<int64_t>(result.iterations));
  neg_span.Attr("cost", result.cost);
  neg_span.Attr("messages", result.metrics.messages);
  neg_span.Attr("bytes", result.metrics.bytes);
  return result;
}

}  // namespace qtrade
