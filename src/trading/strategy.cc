#include "trading/strategy.h"

#include <algorithm>

namespace qtrade {

namespace {

std::string BookKey(const std::string& signature,
                    const std::vector<std::string>& coverage) {
  std::string key = signature;
  key += "|";
  for (size_t i = 0; i < coverage.size(); ++i) {
    if (i > 0) key += ",";
    key += coverage[i];
  }
  return key;
}

}  // namespace

// ---------------------------------------------------------------------------
// ContainmentAwareStrategy

ContainmentAwareStrategy::ContainmentAwareStrategy(double initial_margin,
                                                   double step,
                                                   double max_margin,
                                                   size_t capacity)
    : margin_(initial_margin),
      step_(step),
      max_margin_(max_margin),
      capacity_(capacity == 0 ? 1 : capacity) {}

bool ContainmentAwareStrategy::Subsumes(
    const QueryShape& outer_shape, const std::vector<std::string>& outer_cov,
    const QueryShape& inner_shape, const std::vector<std::string>& inner_cov) {
  // inner's answer must be derivable from outer's: inner at least as
  // restrictive (ShapeContains) over no more data (coverage inclusion).
  return ShapeContains(outer_shape, inner_shape) &&
         std::includes(outer_cov.begin(), outer_cov.end(), inner_cov.begin(),
                       inner_cov.end());
}

double ContainmentAwareStrategy::Quote(double true_cost_ms) {
  // No context (e.g. a caller outside the engine): plain markup. The
  // price is not entered into the book, so it cannot pin later quotes.
  ++stats_.quotes;
  return true_cost_ms * (1.0 + margin_);
}

double ContainmentAwareStrategy::QuoteWithContext(const QuoteContext& ctx) {
  ++stats_.quotes;
  const std::string key = BookKey(ctx.signature, ctx.coverage);
  auto pin = pinned_.find(key);
  if (pin != pinned_.end()) {
    ++stats_.pinned;
    return pin->second;
  }

  double quote = ctx.true_cost_ms * (1.0 + margin_);
  // Clamp into the interval the book implies. Lower bound first: a
  // commodity must not be cheaper than anything derivable from it.
  double lower = 0.0;
  double upper = -1.0;  // <0 = unbounded
  for (const Entry& e : book_) {
    if (Subsumes(ctx.shape, ctx.coverage, e.shape, e.coverage)) {
      lower = std::max(lower, e.quote);
    }
    if (Subsumes(e.shape, e.coverage, ctx.shape, ctx.coverage)) {
      upper = upper < 0 ? e.quote : std::min(upper, e.quote);
    }
  }
  const double desired = quote;
  if (quote < lower) quote = lower;
  if (upper >= 0 && quote > upper) quote = upper;
  if (quote != desired) ++stats_.clamped;

  if (book_.size() >= capacity_) {
    pinned_.erase(book_.front().key);
    book_.pop_front();
  }
  Entry e;
  e.key = key;
  e.shape = ctx.shape;
  e.coverage = ctx.coverage;
  e.quote = quote;
  book_.push_back(std::move(e));
  pinned_[key] = quote;
  return quote;
}

void ContainmentAwareStrategy::OnTradeOutcome(const TradeOutcome& outcome) {
  ++(outcome.won ? stats_.wins : stats_.losses);
  margin_ += outcome.won ? step_ : -step_;
  if (margin_ < 0) margin_ = 0;
  if (margin_ > max_margin_) margin_ = max_margin_;
}

StrategyStats ContainmentAwareStrategy::Stats() const {
  StrategyStats s = stats_;
  s.margin = margin_;
  return s;
}

// ---------------------------------------------------------------------------
// HistoryAdaptiveStrategy

HistoryAdaptiveStrategy::HistoryAdaptiveStrategy(uint64_t seed,
                                                 double initial_margin,
                                                 double base_step,
                                                 double base_jitter,
                                                 double max_margin,
                                                 size_t window)
    : rng_(seed),
      margin_(initial_margin),
      base_step_(base_step),
      base_jitter_(base_jitter),
      max_margin_(max_margin),
      window_(window == 0 ? 1 : window),
      jitter_(rng_.UniformReal(0.0, base_jitter)) {}

double HistoryAdaptiveStrategy::Decay() const {
  return 1.0 / (1.0 + static_cast<double>(outcomes_seen_) / 4.0);
}

double HistoryAdaptiveStrategy::WindowWinRate() const {
  if (recent_.empty()) return 0.5;
  int64_t wins = 0;
  for (bool won : recent_) wins += won ? 1 : 0;
  return static_cast<double>(wins) / static_cast<double>(recent_.size());
}

double HistoryAdaptiveStrategy::Quote(double true_cost_ms) {
  ++stats_.quotes;
  // Exploration jitter: non-negative (the quote stays rational),
  // decaying (prices converge), and fixed between outcomes — every
  // quote inside one outcome epoch uses the same multiplier, so the
  // relative order of quotes matches the relative order of true costs
  // and a contained query is never priced above its container just
  // because the jitter draw landed higher.
  double m = margin_ + jitter_ * Decay();
  if (m > max_margin_) m = max_margin_;
  return true_cost_ms * (1.0 + m);
}

void HistoryAdaptiveStrategy::OnTradeOutcome(const TradeOutcome& outcome) {
  ++(outcome.won ? stats_.wins : stats_.losses);
  recent_.push_back(outcome.won);
  while (recent_.size() > window_) recent_.pop_front();
  ++outcomes_seen_;
  // Follow the windowed win rate: winning a lot means the market bears
  // more, losing means we are overpriced. The step decays with every
  // outcome, so the margin settles no matter the outcome sequence.
  const double drift = (WindowWinRate() - 0.5) * 2.0;  // [-1, 1]
  margin_ += drift * base_step_ * Decay();
  if (margin_ < 0) margin_ = 0;
  if (margin_ > max_margin_) margin_ = max_margin_;
  // Re-draw the exploration jitter only on outcome boundaries.
  jitter_ = rng_.UniformReal(0.0, base_jitter_);
}

StrategyStats HistoryAdaptiveStrategy::Stats() const {
  StrategyStats s = stats_;
  s.margin = margin_;
  return s;
}

}  // namespace qtrade
