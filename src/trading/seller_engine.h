// A federation node in its seller role: answers RFBs with priced offers
// (via the §3.4/§3.5 offer generator), participates in auction and
// bargaining rounds through its strategy module, and — once awarded —
// actually executes sold answers against its local storage.
//
// The engine is a Transport NodeEndpoint: all negotiation traffic —
// including the §3.5 subcontracting path, which addresses peers by node
// name only — flows through the registered Transport, never through
// direct engine pointers. Handlers are thread-safe: the transport may
// deliver the buyer's RFB and a peer's subcontract RFB concurrently.
#ifndef QTRADE_TRADING_SELLER_ENGINE_H_
#define QTRADE_TRADING_SELLER_ENGINE_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "catalog/catalog.h"
#include "exec/executor.h"
#include "exec/storage.h"
#include "net/transport.h"
#include "opt/offer_cache.h"
#include "opt/offer_generator.h"
#include "plan/plan_factory.h"
#include "trading/messages.h"
#include "trading/strategy.h"
#include "util/status.h"

namespace qtrade {

class SellerEngine : public NodeEndpoint {
 public:
  /// `store` may be null for planning-only federations (no execution).
  SellerEngine(NodeCatalog* catalog, TableStore* store,
               const PlanFactory* factory,
               std::unique_ptr<SellerStrategy> strategy,
               OfferGeneratorOptions generator_options = {});

  const std::string& name() const override { return catalog_->node_name(); }

  /// Enables §3.5 subcontracting: when this node's fragment of a relation
  /// is incomplete, it may buy the missing slice from the named `peers`
  /// (one level deep) and resell a combined, fuller offer. All
  /// subcontract traffic flows through `transport`.
  void EnableSubcontracting(std::vector<std::string> peers,
                            Transport* transport);

  /// Combined offers sold so far that embed purchased sub-answers.
  int64_t subcontracted_offers() const {
    return subcontracted_offers_.load(std::memory_order_relaxed);
  }

  NodeCatalog* catalog() { return catalog_; }
  TableStore* store() { return store_; }
  SellerStrategy* strategy() { return strategy_.get(); }

  /// Snapshot of the strategy's pricing counters, taken under the
  /// engine mutex (the strategy is mutated under it). Safe during
  /// concurrent negotiations.
  StrategyStats strategy_stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return strategy_->Stats();
  }

  /// Offer memoization (opt/offer_cache.h): capacity 0 disables. Cached
  /// prices are epoch-invalidated on catalog stats changes, and offer
  /// ids are minted fresh per RFB either way, so negotiation outcomes
  /// are identical with the cache on or off.
  void set_offer_cache_capacity(size_t capacity) {
    generator_.set_cache_capacity(capacity);
  }
  size_t offer_cache_capacity() const { return generator_.cache_capacity(); }
  OfferCacheStats offer_cache_stats() const {
    return generator_.cache_stats();
  }

  /// Parallel plan-search width for this seller's §3.4 DP (see
  /// QtOptions::dp_threads). Offers are byte-identical at every setting.
  void set_dp_threads(int threads) { generator_.set_dp_threads(threads); }
  int dp_threads() const { return generator_.dp_threads(); }
  void ConfigurePlanSearch(int dp_threads) override {
    set_dp_threads(dp_threads);
  }
  /// Cumulative wall-clock this node spent generating offers (the
  /// seller-side cost the cache experiments measure).
  int64_t offer_generate_ns() const { return generator_.generate_ns(); }

  /// Attaches tracing/metrics to this seller and its offer generator:
  /// OnRfb wraps generation in an offer_gen span (parented under the
  /// buyer's rfb_broadcast span via the Rfb trace context) and
  /// subcontract covers in a partition_cover span. Nulls detach.
  void SetObservability(obs::Tracer* tracer, obs::MetricsRegistry* metrics) {
    tracer_.store(tracer, std::memory_order_relaxed);
    generator_.SetObservability(tracer, metrics);
  }

  /// Fig. 2 steps S1–S2: rewrite, enumerate, analyse views, price.
  /// Quotes are strategy-adjusted; the honest estimate is kept privately.
  Result<std::vector<Offer>> OnRfb(const Rfb& rfb);

  /// Auction round (nested negotiation, step S3): if our offer for this
  /// RFB lost against `best_score`, optionally undercut by shaving the
  /// margin. Returns the improved offer, if any.
  std::optional<Offer> OnAuctionTick(const AuctionTick& tick);

  /// Bargaining: buyer counter-offers `target_value` for this RFB's
  /// offers spanning `signature`; the seller accepts (re-quoting down to
  /// its reservation value) or holds its current quote.
  std::optional<Offer> OnCounterOffer(const std::string& rfb_id,
                                      const std::string& signature,
                                      double target_value);

  /// Award/decline feedback (strategy learning).
  void OnAwards(const std::vector<Award>& awards,
                const std::vector<std::string>& lost_offer_ids);

  /// Executes a previously offered answer against local data.
  Result<RowSet> ExecuteOffer(const std::string& offer_id);

  /// Delivery-cost feedback (§3.1 property-vector calibration): when on,
  /// measured delivery wall time per coverage signature is blended into
  /// the cost basis the strategy quotes from on the *next* RFB for the
  /// same signature. Off (the default) the engine neither reads the
  /// clock nor consults observations, so quotes are byte-identical to a
  /// build without the feature.
  void set_cost_feedback(bool on) {
    cost_feedback_.store(on, std::memory_order_relaxed);
  }
  bool cost_feedback() const {
    return cost_feedback_.load(std::memory_order_relaxed);
  }

  /// Streamed deliveries served through the columnar fast path (vs the
  /// materialize-and-slice fallback).
  int64_t streamed_deliveries() const {
    return streamed_deliveries_.load(std::memory_order_relaxed);
  }

  /// Honest cost of an offer (testing/experiments: social cost).
  Result<double> TrueCost(const std::string& offer_id) const;

  int64_t rfbs_seen() const {
    return rfbs_seen_.load(std::memory_order_relaxed);
  }

  // NodeEndpoint: the transport-facing spellings of the handlers above.
  Result<std::vector<Offer>> HandleRfb(const Rfb& rfb) override {
    return OnRfb(rfb);
  }
  std::optional<Offer> HandleAuctionTick(const AuctionTick& tick) override {
    return OnAuctionTick(tick);
  }
  std::optional<Offer> HandleCounterOffer(
      const CounterOffer& counter) override {
    return OnCounterOffer(counter.rfb_id, counter.signature,
                          counter.target_value);
  }
  void HandleAwards(const AwardBatch& batch) override {
    OnAwards(batch.awards, batch.lost_offer_ids);
  }
  Result<RowSet> HandleExecuteOffer(const std::string& offer_id) override {
    return ExecuteOffer(offer_id);
  }
  /// Streaming delivery. Offers whose recipe is a single-table
  /// scan-filter-project (no view, no subcontract union, no
  /// aggregation/DISTINCT/ORDER BY/LIMIT) with a provably error-free
  /// predicate run incrementally over the partition chunks — the first
  /// chunk leaves before the last partition is even touched. Everything
  /// else falls back to the base-class materialize-and-slice, so the
  /// concatenated stream always equals ExecuteOffer's answer.
  Status HandleExecuteOfferChunked(const std::string& offer_id,
                                   size_t chunk_rows,
                                   const RowSink& sink) override;
  /// Introspection for the NodeServer's kStatsRequest admin envelope:
  /// offer-cache occupancy/hit counters, DP width, RFB/subcontract
  /// totals. Reads only atomics and the cache's own stats lock, so it is
  /// safe during concurrent negotiations.
  void CollectStats(
      std::vector<std::pair<std::string, std::string>>* out) const override;

 private:
  struct OfferRecord {
    Offer offer;            // as quoted
    double true_cost = 0;   // pre-markup estimate
    /// Execution recipe: offered statement analyzed against the catalog,
    /// plus which hosted partitions each alias scans. When `view_name`
    /// is set the query runs over that materialized extent instead.
    sql::BoundQuery exec_query;
    std::map<std::string, std::vector<std::string>> scan_partitions;
    std::string view_name;
    sql::SelectStmt view_compensation;
    /// §3.5 subcontracting: purchased sub-answers (peer node name, offer
    /// id there) to union with the local part at delivery time.
    std::vector<std::pair<std::string, std::string>> subcontracts;
  };

  /// Builds combined offers for `asked` by buying missing fragments from
  /// peers (one level deep, via the transport). Appends to `out`.
  /// `parent` nests the partition_cover span under this RFB's offer_gen.
  void TrySubcontract(const Rfb& rfb, const sql::BoundQuery& asked,
                      std::vector<Offer>* out, obs::SpanRef parent);

  /// Stores a record and indexes its offer under its rfb (mu_ held).
  void RecordOfferLocked(const std::string& rfb_id, OfferRecord record);

  /// Cost feedback: folds one measured delivery (wall ms) into the EWMA
  /// for the offer's coverage signature. No-op when feedback is off.
  void ObserveDeliveryCost(const std::string& offer_id, double elapsed_ms);

  /// ExecuteOffer's body; the public wrapper adds the (feedback-gated)
  /// delivery-cost measurement around it.
  Result<RowSet> ExecuteOfferImpl(const std::string& offer_id);

  NodeCatalog* catalog_;
  TableStore* store_;
  const PlanFactory* factory_;
  std::unique_ptr<SellerStrategy> strategy_;
  /// strategy_->wants_context(), cached at construction so the quote
  /// paths can skip context assembly without touching the strategy
  /// outside mu_.
  bool wants_context_ = false;
  OfferGenerator generator_;
  /// Guards records_, offers_by_rfb_ and strategy_ against concurrent
  /// transport deliveries. Never held across a Transport call (nested
  /// subcontract fan-outs would deadlock otherwise).
  mutable std::mutex mu_;
  std::map<std::string, OfferRecord> records_;       // by offer id
  std::map<std::string, std::vector<std::string>> offers_by_rfb_;
  std::atomic<int64_t> rfbs_seen_{0};
  std::vector<std::string> peer_names_;
  Transport* transport_ = nullptr;
  std::atomic<int64_t> subcontracted_offers_{0};
  std::atomic<obs::Tracer*> tracer_{nullptr};
  /// Delivery-cost feedback state: observed wall ms per coverage
  /// signature (mu_), consulted at quote time only when the knob is on.
  std::atomic<bool> cost_feedback_{false};
  std::map<std::string, double> observed_cost_ms_;  // mu_
  std::atomic<int64_t> streamed_deliveries_{0};
};

}  // namespace qtrade

#endif  // QTRADE_TRADING_SELLER_ENGINE_H_
