#include "trading/buyer_analyser.h"

#include <algorithm>

#include "rewrite/partition_rewriter.h"
#include "util/strings.h"

namespace qtrade {

namespace {

using sql::BoundQuery;
using sql::ExprPtr;

/// Alias-set-only signature: overlap analysis groups offers spanning the
/// same relations regardless of which fragments they cover.
std::string AliasOnlySignature(const Offer& offer) {
  std::vector<std::string> aliases = offer.AliasSet();
  std::sort(aliases.begin(), aliases.end());
  return Join(aliases, ",");
}

std::set<std::string> CoverageSet(const OfferCoverage& cov) {
  return {cov.partitions.begin(), cov.partitions.end()};
}

bool Overlaps(const Offer& a, const Offer& b) {
  // Rectangles overlap iff every alias's partition sets intersect.
  for (const auto& cov_a : a.coverage) {
    const OfferCoverage* cov_b = b.FindCoverage(cov_a.alias);
    if (cov_b == nullptr) return false;
    bool common = false;
    for (const auto& pid : cov_a.partitions) {
      if (std::find(cov_b->partitions.begin(), cov_b->partitions.end(),
                    pid) != cov_b->partitions.end()) {
        common = true;
        break;
      }
    }
    if (!common) return false;
  }
  return true;
}

}  // namespace

sql::SelectStmt BuildRestrictedSubsetQuery(
    const sql::BoundQuery& original, const std::set<std::string>& aliases,
    const std::map<std::string, std::set<std::string>>& box,
    const FederationSchema& federation) {
  sql::SelectStmt stmt;

  // Needed columns: outputs / grouping / ordering inputs on these aliases
  // plus border columns of predicates leaving the subset.
  std::set<std::pair<std::string, std::string>> needed;
  auto collect = [&](const ExprPtr& expr) {
    sql::ForEachColumnRef(expr, [&](const sql::Expr& ref) {
      if (aliases.count(ref.qualifier) > 0) {
        needed.insert({ref.qualifier, ref.column});
      }
    });
  };
  for (const auto& out : original.outputs) collect(out.expr);
  for (const auto& g : original.group_by) {
    if (aliases.count(g.alias) > 0) needed.insert({g.alias, g.column});
  }
  collect(original.having);
  for (const auto& o : original.order_by) collect(o.expr);

  std::vector<ExprPtr> where;
  for (const auto& conj : original.conjuncts) {
    bool all_in = true, any_in = false;
    for (const auto& a : conj.aliases) {
      if (aliases.count(a) > 0) {
        any_in = true;
      } else {
        all_in = false;
      }
    }
    if (all_in) {
      where.push_back(conj.expr);
    } else if (any_in) {
      collect(conj.expr);
    }
  }

  // Partition restrictions per alias from the ask box.
  for (const auto& [alias, partitions] : box) {
    if (aliases.count(alias) == 0) continue;
    const sql::TableRef* tref = original.FindTable(alias);
    if (tref == nullptr) continue;
    const TablePartitioning* partitioning =
        federation.FindPartitioning(tref->table);
    if (partitioning == nullptr) continue;
    if (partitions.size() >= partitioning->partitions.size()) continue;
    std::vector<const PartitionDef*> defs;
    for (const auto& part : partitioning->partitions) {
      if (partitions.count(part.id) > 0) defs.push_back(&part);
    }
    ExprPtr restriction = PartitionRestriction(defs, alias);
    if (restriction != nullptr) where.push_back(restriction);
  }

  for (const auto& [alias, column] : needed) {
    sql::SelectItem item;
    item.expr = sql::Col(alias, column);
    stmt.items.push_back(std::move(item));
  }
  for (const auto& tref : original.tables) {
    if (aliases.count(tref.alias) > 0) stmt.from.push_back(tref);
  }
  if (stmt.items.empty() && !stmt.from.empty()) {
    const sql::TableRef& first = stmt.from.front();
    const TableDef* def = federation.FindTable(first.table);
    sql::SelectItem item;
    item.expr = sql::Col(first.alias, def->columns.front().name);
    stmt.items.push_back(std::move(item));
  }
  stmt.where = sql::AndAll(where);
  return stmt;
}

std::vector<TradedQuery> BuyerAnalyser::Analyse(
    const std::vector<Offer>& offers,
    const std::vector<CandidatePlan>& candidates,
    const std::set<std::string>& already_asked, int iteration) {
  (void)candidates;
  std::vector<TradedQuery> out;
  std::set<std::string> emitted = already_asked;

  // Group core offers by alias set.
  std::map<std::string, std::vector<const Offer*>> by_signature;
  for (const auto& offer : offers) {
    if (offer.kind != OfferKind::kCoreRows) continue;
    by_signature[AliasOnlySignature(offer)].push_back(&offer);
  }

  int counter = 0;
  for (auto& [signature, group] : by_signature) {
    if (group.size() < 2) continue;
    // Anchor = cheapest offer of the group.
    std::sort(group.begin(), group.end(), [](const Offer* a, const Offer* b) {
      return a->props.total_time_ms < b->props.total_time_ms;
    });
    const Offer* anchor = group.front();
    for (size_t i = 1; i < group.size(); ++i) {
      const Offer* other = group[i];
      if (!Overlaps(*anchor, *other)) continue;
      // Ask for the slice of `other` not provided by `anchor`: restrict
      // one alias to the set difference, keep the others at `other`'s
      // coverage. Emit one derived query per alias with a non-empty,
      // strictly smaller difference.
      for (const auto& cov : other->coverage) {
        const OfferCoverage* anchor_cov = anchor->FindCoverage(cov.alias);
        if (anchor_cov == nullptr) continue;
        std::set<std::string> anchor_set = CoverageSet(*anchor_cov);
        std::set<std::string> diff;
        for (const auto& pid : cov.partitions) {
          if (anchor_set.count(pid) == 0) diff.insert(pid);
        }
        if (diff.empty() || diff.size() == cov.partitions.size()) continue;

        TradedQuery traded;
        traded.rfb_id = "q" + std::to_string(iteration) + "-" +
                        std::to_string(counter++);
        std::set<std::string> aliases;
        for (const auto& c : other->coverage) {
          aliases.insert(c.alias);
          traded.ask_box[c.alias] = CoverageSet(c);
        }
        traded.ask_box[cov.alias] = diff;
        traded.stmt = BuildRestrictedSubsetQuery(*original_, aliases,
                                                 traded.ask_box,
                                                 *federation_);
        // Worth at most what the redundant offer quoted.
        traded.estimated_value = other->props.total_time_ms;
        std::string text = sql::ToSql(traded.stmt);
        if (emitted.insert(text).second) {
          out.push_back(std::move(traded));
        }
      }
    }
  }
  return out;
}

}  // namespace qtrade
