// The buyer side of the Query-Trading algorithm (paper Fig. 2, steps
// B1–B8), generic over the negotiation protocol (§2): sealed-bid bidding,
// iterated reverse auction, or bargaining with counter-offers.
//
// One Optimize() call runs the full iterative loop: estimate values (B1),
// request bids (B2), run the nested negotiation (B3/S3), assemble
// candidate plans from the winning offers (B4), mine the candidates and
// offers for new queries (B5–B6, the predicates analyser), and repeat
// until no better plan or no new queries appear (B7), returning the best
// execution plan and its cost (B8). No data moves during optimization.
#ifndef QTRADE_TRADING_BUYER_ENGINE_H_
#define QTRADE_TRADING_BUYER_ENGINE_H_

#include <limits>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "net/network.h"
#include "opt/plan_assembler.h"
#include "trading/buyer_analyser.h"
#include "trading/messages.h"
#include "trading/seller_engine.h"
#include "trading/strategy.h"
#include "util/random.h"
#include "util/status.h"

namespace qtrade {

enum class NegotiationProtocol { kBidding, kAuction, kBargaining };

const char* NegotiationProtocolName(NegotiationProtocol protocol);

struct QtOptions {
  NegotiationProtocol protocol = NegotiationProtocol::kBidding;
  /// Fig. 2 outer-loop bound (safety net; the paper's loop stops on
  /// no-improvement / no-new-queries anyway).
  int max_iterations = 4;
  int max_auction_rounds = 3;
  int max_bargain_rounds = 3;
  /// Sellers contacted per RFB; 0 = broadcast to every known seller.
  size_t rfb_fanout = 0;
  /// Buyer-side ranking of offers (§3.1 weighting function).
  OfferValuation valuation;
  AssemblerOptions assembler;
  /// v0: externally estimated value of the original query (<0 unknown).
  double initial_value = -1;
  uint64_t seed = 42;
};

struct QtResult {
  PlanPtr plan;  // null when optimization failed
  double cost = std::numeric_limits<double>::infinity();
  int iterations = 0;
  std::vector<Offer> winning_offers;
  std::vector<double> cost_per_iteration;  // best-so-far after each round
  TradeMetrics metrics;

  bool ok() const { return plan != nullptr; }
};

class BuyerEngine {
 public:
  /// `sellers` is the buyer's peer directory; the buyer's own node may be
  /// in it (self-supply is legitimate and models local execution).
  BuyerEngine(NodeCatalog* catalog, const PlanFactory* factory,
              SimNetwork* network, std::vector<SellerEngine*> sellers,
              QtOptions options = {},
              std::unique_ptr<BuyerStrategy> strategy = nullptr);

  /// Runs the QT algorithm for a SELECT query.
  Result<QtResult> Optimize(const std::string& sql);

 private:
  /// Sends one RFB to the selected sellers, collects (clipped) offers.
  Status TradeQuery(const TradedQuery& traded, Rng* rng,
                    std::vector<Offer>* pool, TradeMetrics* metrics);

  /// Runs the nested negotiation over the pool for this iteration.
  void RunNestedNegotiation(std::vector<Offer>* pool, TradeMetrics* metrics);

  /// Clips an offer's coverage to the ask box of the RFB it answers.
  void ClipOffer(Offer* offer,
                 const std::map<std::string, std::set<std::string>>& box)
      const;

  std::vector<SellerEngine*> PickSellers(Rng* rng) const;

  NodeCatalog* catalog_;
  const PlanFactory* factory_;
  SimNetwork* network_;
  std::vector<SellerEngine*> sellers_;
  QtOptions options_;
  std::unique_ptr<BuyerStrategy> strategy_;
  std::map<std::string, std::map<std::string, std::set<std::string>>>
      ask_box_by_rfb_;
  int64_t optimize_count_ = 0;  // makes RFB ids unique across runs
};

}  // namespace qtrade

#endif  // QTRADE_TRADING_BUYER_ENGINE_H_
