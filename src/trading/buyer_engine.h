// The buyer side of the Query-Trading algorithm (paper Fig. 2, steps
// B1–B8), generic over the negotiation protocol (§2): sealed-bid bidding,
// iterated reverse auction, or bargaining with counter-offers.
//
// One Optimize() call runs the full iterative loop: estimate values (B1),
// request bids (B2), run the nested negotiation (B3/S3), assemble
// candidate plans from the winning offers (B4), mine the candidates and
// offers for new queries (B5–B6, the predicates analyser), and repeat
// until no better plan or no new queries appear (B7), returning the best
// execution plan and its cost (B8). No data moves during optimization.
//
// The buyer holds no seller pointers: it knows sellers by node name only
// (its trader directory) and reaches them through a Transport, so the
// same engine runs over the in-process federation, a fault-injecting
// decorator, or a real socket transport.
#ifndef QTRADE_TRADING_BUYER_ENGINE_H_
#define QTRADE_TRADING_BUYER_ENGINE_H_

#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "net/resilient.h"
#include "net/tcp_transport.h"
#include "net/transport.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "opt/plan_assembler.h"
#include "trading/buyer_analyser.h"
#include "trading/messages.h"
#include "trading/strategy.h"
#include "util/random.h"
#include "util/status.h"

namespace qtrade {

enum class NegotiationProtocol { kBidding, kAuction, kBargaining };

const char* NegotiationProtocolName(NegotiationProtocol protocol);

/// Buyer-side award recovery (QueryTradingOptimizer::Execute): what to do
/// when an awarded seller fails or times out before delivering its sold
/// answer.
struct RecoveryOptions {
  /// Patch the failed kRemote plan leaf onto the next-ranked offer of the
  /// same (rfb, coverage signature, kind) from a still-healthy seller.
  bool reaward = true;
  /// When no substitute offer exists, re-run a scoped negotiation with
  /// the failed sellers removed from the trader directory; at most this
  /// many times per Execute. 0 disables replanning.
  int max_replans = 2;
};

struct QtOptions {
  NegotiationProtocol protocol = NegotiationProtocol::kBidding;
  /// Fig. 2 outer-loop bound (safety net; the paper's loop stops on
  /// no-improvement / no-new-queries anyway).
  int max_iterations = 4;
  int max_auction_rounds = 3;
  int max_bargain_rounds = 3;
  /// Sellers contacted per RFB; 0 = broadcast to every known seller.
  size_t rfb_fanout = 0;
  /// Per-round offer deadline in simulated ms; 0 = wait for every reply.
  /// Offers whose simulated arrival exceeds the deadline are discarded
  /// (counted as offers_late) and the round closes at the deadline
  /// instead of the slowest straggler — the paper's timeout degradation:
  /// a worse plan sooner rather than a better plan late.
  double offer_timeout_ms = 0;
  /// Buyer-side ranking of offers (§3.1 weighting function).
  OfferValuation valuation;
  AssemblerOptions assembler;
  /// v0: externally estimated value of the original query (<0 unknown).
  double initial_value = -1;
  uint64_t seed = 42;
  /// Optional stable label baked into RFB ids instead of the
  /// process-unique engine tag. Fault-injection experiments set it so two
  /// identically configured runs issue byte-identical RFB ids and hence
  /// draw identical per-message fault decisions. Leave empty unless you
  /// guarantee no two live engines share (node, label).
  std::string run_label;
  /// Seller-side offer memoization: entries each federation seller keeps
  /// in its (signature, coverage-mask) offer cache; 0 = off. Applied by
  /// the QueryTradingOptimizer facade to all sellers. Plan cost, awarded
  /// offers and message counts are identical with the cache on or off —
  /// it only skips recomputation (see opt/offer_cache.h).
  size_t offer_cache_capacity = 256;
  /// Threads searching one DP lattice level inside a single negotiation:
  /// the seller's §3.4 subset DP and the buyer's §3.6 coverage DP. 0/1 =
  /// serial (today's behavior, byte for byte). Higher values fan each
  /// level out over the process-wide PlanSearchPool — winning plans,
  /// costs and TradeMetrics stay byte-identical at every setting,
  /// parallelism only changes wall time (DESIGN.md "Parallel plan
  /// search"). Applied by the QueryTradingOptimizer facade to the
  /// buyer's assembler and every federation seller. When left 0, the
  /// facade honors the QTRADE_DP_THREADS environment variable, so
  /// unchanged suites can be re-run at any thread count.
  int dp_threads = 0;
  /// Negotiation tracing / metrics outputs (src/obs/). All off by
  /// default; when any path is set the QueryTradingOptimizer facade
  /// constructs a Tracer/MetricsRegistry, wires them through the buyer,
  /// every seller and the transport, and writes the files after each
  /// Optimize. Tracing never changes negotiation outcomes: trace context
  /// rides in fixed-width Rfb fields, so byte totals are identical with
  /// tracing on or off.
  obs::ObsOptions obs;
  /// Remote seller daemons (examples/qtrade_node.cpp) to trade with in
  /// addition to the federation's own nodes. Non-empty switches the
  /// QueryTradingOptimizer facade onto an owned TcpTransport: federation
  /// sellers stay local (loopback) endpoints, each peer is dialed at
  /// host:port speaking the serde/ codec, and the buyer's trader
  /// directory becomes federation nodes + peers. Only consulted by the
  /// facade; a directly constructed BuyerEngine uses whatever Transport
  /// it is given.
  std::vector<RemotePeer> remote_peers;
  /// Socket knobs for `remote_peers` (connect/read timeouts, fan-out
  /// threading). When `offer_timeout_ms` is set it also caps each TCP
  /// read wait, so a hung daemon degrades through the same dropped-reply
  /// path as a too-slow simulated seller.
  TcpTransportOptions tcp;
  /// Transport fault tolerance (net/resilient.h): per-peer retry with
  /// exponential backoff + seeded jitter and a consecutive-failure
  /// circuit breaker. When enabled, the QueryTradingOptimizer facade
  /// wraps whatever transport is active (in-process, faulty stack, or
  /// TCP) in a ResilientTransport; it acts only on dropped messages, so
  /// zero-fault negotiations are byte-identical with it on or off. Only
  /// consulted by the facade; a directly constructed BuyerEngine uses
  /// the transport it is given unwrapped.
  ResilienceOptions resilience;
  /// Buyer-side award recovery at execution time (facade Execute).
  RecoveryOptions recovery;
  /// Data plane (facade Execute): > 0 ships sold answers chunk-by-chunk
  /// — in-process sellers run their columnar streaming path, daemon
  /// peers stream kRowChunk frames — in chunks of at most this many
  /// rows, and TradeMetrics gains measured first-row/last-row delivery
  /// times. 0 (default) keeps whole-RowSet deliveries, byte-identical
  /// to the pre-streaming facade. The reassembled answer is identical
  /// at every setting.
  int chunk_rows = 0;
  /// Seller-side delivery-cost feedback (§3.1): when true the facade
  /// enables each federation seller's measured-delivery EWMA, which is
  /// blended into the cost basis quoted on later RFBs for the same
  /// coverage signature. Default off: quotes are byte-identical to a
  /// build without the feature.
  bool cost_feedback = false;
  /// Simulation/testing hook, consulted only by the facade: negotiate
  /// over this transport instead of the federation default (the fault
  /// -schedule explorer injects its scripted transport here). The
  /// override must already have the federation's sellers reachable;
  /// resilience wrapping still applies on top.
  Transport* transport_override = nullptr;
  /// Buyer-side negotiation strategy factory, consulted by the facade
  /// for every BuyerEngine it constructs (the main negotiation and each
  /// recovery replan get a fresh instance). Null keeps the
  /// DefaultBuyerStrategy. A directly constructed BuyerEngine takes its
  /// strategy as a constructor argument instead.
  std::function<std::unique_ptr<BuyerStrategy>()> buyer_strategy;
};

struct QtResult {
  PlanPtr plan;  // null when optimization failed
  double cost = std::numeric_limits<double>::infinity();
  int iterations = 0;
  /// The frame-header channel this negotiation ran on (every envelope of
  /// the run carried it; concurrent runs never share one).
  uint32_t negotiation_id = 0;
  std::vector<Offer> winning_offers;
  std::vector<double> cost_per_iteration;  // best-so-far after each round
  TradeMetrics metrics;
  /// The full final-iteration offer pool (winners and losers): the
  /// ranked substitutes award recovery re-awards from when a winning
  /// seller fails to deliver.
  std::vector<Offer> offer_pool;
  /// The optimized SQL text, kept so recovery can re-run a scoped
  /// negotiation without the failed sellers.
  std::string sql;

  bool ok() const { return plan != nullptr; }
};

class BuyerEngine {
 public:
  /// `sellers` is the buyer's trader directory: the node names it may
  /// contact through `transport`. The buyer's own node may be in it
  /// (self-supply is legitimate and models local execution).
  BuyerEngine(NodeCatalog* catalog, const PlanFactory* factory,
              Transport* transport, std::vector<std::string> sellers,
              QtOptions options = {},
              std::unique_ptr<BuyerStrategy> strategy = nullptr);

  /// Runs the QT algorithm for a SELECT query.
  Result<QtResult> Optimize(const std::string& sql);

  /// Attaches tracing/metrics (nulls detach). Optimize then wraps the
  /// Fig. 2 loop in a `negotiation` span with nested round/rfb/rank/
  /// assemble/award spans, honouring obs.trace_sample_period (every Nth
  /// negotiation is traced; metrics are never sampled).
  void SetObservability(obs::Tracer* tracer, obs::MetricsRegistry* metrics) {
    tracer_ = tracer;
    metrics_ = metrics;
  }

 private:
  /// Sends one RFB to the selected sellers, collects (clipped) offers,
  /// applies the offer deadline, and closes the round on the transport.
  /// The rfb_broadcast span is parented under the round span `parent`.
  Status TradeQuery(const TradedQuery& traded, Rng* rng,
                    std::vector<Offer>* pool, TradeMetrics* metrics,
                    obs::SpanRef parent);

  /// Runs the nested negotiation over the pool for this iteration.
  void RunNestedNegotiation(std::vector<Offer>* pool, TradeMetrics* metrics,
                            obs::SpanRef parent);

  /// Clips an offer's coverage to the ask box of the RFB it answers.
  void ClipOffer(Offer* offer,
                 const std::map<std::string, std::set<std::string>>& box)
      const;

  std::vector<std::string> PickSellers(Rng* rng) const;

  NodeCatalog* catalog_;
  const PlanFactory* factory_;
  Transport* transport_;
  std::vector<std::string> sellers_;  // trader directory (node names)
  QtOptions options_;
  std::unique_ptr<BuyerStrategy> strategy_;
  std::map<std::string, std::map<std::string, std::set<std::string>>>
      ask_box_by_rfb_;
  /// Process-unique engine tag + per-engine counter make RFB ids (and the
  /// offer ids sellers derive from them) unique even when several buyer
  /// engines for the same node coexist or are recreated per query.
  const int64_t engine_tag_;
  int64_t optimize_count_ = 0;
  /// Channel of the Optimize call in flight: stamped into every envelope
  /// it sends (AllocateNegotiationId per call).
  uint32_t negotiation_id_ = 0;
  /// Optimize runs on one thread; plain pointers suffice here (sellers
  /// and transports, which run on worker threads, use atomics).
  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace qtrade

#endif  // QTRADE_TRADING_BUYER_ENGINE_H_
