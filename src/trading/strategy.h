// Strategy modules (paper §2, Figure 1): how sellers price their offers
// and how buyers estimate the value of the queries they request.
//
// Cooperative sellers quote their true estimated cost (joint-surplus
// maximisation, the intra-enterprise case). Competitive sellers quote
// cost * (1 + margin) and adapt the margin from win/loss feedback — a
// simple reinforcement pricing rule from the e-commerce literature.
#ifndef QTRADE_TRADING_STRATEGY_H_
#define QTRADE_TRADING_STRATEGY_H_

#include <map>
#include <memory>
#include <string>

namespace qtrade {

/// Seller-side pricing policy.
class SellerStrategy {
 public:
  virtual ~SellerStrategy() = default;

  /// Value quoted to the buyer for an answer whose honest local estimate
  /// is `true_cost_ms`. Must be >= true cost for rational sellers.
  virtual double Quote(double true_cost_ms) = 0;

  /// Feedback after a negotiation: did our offer win?
  virtual void OnOutcome(bool /*won*/) {}

  /// Lowest quote the seller would still accept for this answer (used by
  /// auction/bargaining rounds to decide whether to undercut).
  virtual double ReservationValue(double true_cost_ms) {
    return true_cost_ms;
  }

  virtual std::string name() const = 0;
};

/// Cooperative: quote == true cost.
class TruthfulStrategy : public SellerStrategy {
 public:
  double Quote(double true_cost_ms) override { return true_cost_ms; }
  std::string name() const override { return "truthful"; }
};

/// Competitive: quote = true * (1 + margin); margin creeps up after wins
/// and shrinks after losses, within [0, max_margin].
class AdaptiveMarkupStrategy : public SellerStrategy {
 public:
  explicit AdaptiveMarkupStrategy(double initial_margin = 0.3,
                                  double step = 0.05,
                                  double max_margin = 1.0)
      : margin_(initial_margin), step_(step), max_margin_(max_margin) {}

  double Quote(double true_cost_ms) override {
    return true_cost_ms * (1.0 + margin_);
  }

  void OnOutcome(bool won) override {
    margin_ += won ? step_ : -2 * step_;
    if (margin_ < 0) margin_ = 0;
    if (margin_ > max_margin_) margin_ = max_margin_;
  }

  double margin() const { return margin_; }
  std::string name() const override { return "adaptive-markup"; }

 private:
  double margin_;
  double step_;
  double max_margin_;
};

/// Buyer-side value estimation (paper Fig. 2, step B1): what is a query
/// worth to us? Used as a reserve value in auctions/bargaining. The
/// estimate starts from the externally supplied v0 and is refreshed from
/// the best plan of the previous iteration.
class BuyerStrategy {
 public:
  virtual ~BuyerStrategy() = default;

  /// Reserve value for a traded query. `previous_estimate` is the value
  /// carried on the Q-set entry (v0 for the original query, the current
  /// plan's matching remote cost for derived queries); <= 0 means
  /// unknown.
  virtual double Reserve(const std::string& rfb_id,
                         double previous_estimate) = 0;

  /// Counter-offer value for a bargaining round, given the best quote so
  /// far. Returning >= best_quote means "accept".
  virtual double CounterOffer(double best_quote, int round) = 0;
};

/// Default buyer: accepts anything when no estimate exists; in
/// bargaining, pushes quotes down by a shrinking discount per round.
class DefaultBuyerStrategy : public BuyerStrategy {
 public:
  explicit DefaultBuyerStrategy(double slack = 1.25,
                                double bargain_discount = 0.85)
      : slack_(slack), discount_(bargain_discount) {}

  double Reserve(const std::string& rfb_id,
                 double previous_estimate) override {
    (void)rfb_id;
    if (previous_estimate <= 0) return -1;  // unknown: no reserve
    return previous_estimate * slack_;
  }

  double CounterOffer(double best_quote, int round) override {
    // Rounds 0,1,2... demand 15%, 10%, 5% discounts, then accept.
    double factor = discount_ + 0.05 * round;
    if (factor >= 1.0) return best_quote;
    return best_quote * factor;
  }

 private:
  double slack_;
  double discount_;
};

}  // namespace qtrade

#endif  // QTRADE_TRADING_STRATEGY_H_
