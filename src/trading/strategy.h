// Strategy modules (paper §2, Figure 1): how sellers price their offers
// and how buyers estimate the value of the queries they request.
//
// Cooperative sellers quote their true estimated cost (joint-surplus
// maximisation, the intra-enterprise case). Competitive sellers quote
// cost * (1 + margin) and adapt the margin from win/loss feedback — a
// simple reinforcement pricing rule from the e-commerce literature.
//
// Beyond the paper's two textbook policies this module carries the
// adversarial-market strategies exercised by the strategy-matrix
// explorer (sim/strategy_matrix.h):
//
//  * ContainmentAwareStrategy — an arbitrage-free price book over the
//    query containment lattice ("Pricing Queries (Approximately)
//    Optimally", PAPERS.md): a subquery is never priced above a
//    previously quoted superquery, and repeat queries get the pinned
//    historical price, so the emitted price function is arbitrage-free
//    over the whole negotiation history by construction.
//  * HistoryAdaptiveStrategy — windowed win/loss-rate pricing with a
//    decaying step and seeded exploration jitter, so repeated
//    negotiations converge deterministically.
//
// Strategies are mutated under the owning SellerEngine's mutex; they
// need no internal locking, but must not block or call back into the
// engine.
#ifndef QTRADE_TRADING_STRATEGY_H_
#define QTRADE_TRADING_STRATEGY_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "opt/signature.h"
#include "util/random.h"

namespace qtrade {

/// Counters a strategy exposes for TradeMetrics / node introspection.
/// All counts are cumulative since construction.
struct StrategyStats {
  int64_t quotes = 0;   ///< pricing decisions made
  int64_t clamped = 0;  ///< quotes moved by the arbitrage-free clamp
  int64_t pinned = 0;   ///< quotes answered from the sticky price book
  int64_t wins = 0;     ///< awarded negotiations observed
  int64_t losses = 0;   ///< lost negotiations observed
  double margin = 0.0;  ///< current markup margin (0 = truthful)

  StrategyStats& operator+=(const StrategyStats& o) {
    quotes += o.quotes;
    clamped += o.clamped;
    pinned += o.pinned;
    wins += o.wins;
    losses += o.losses;
    margin += o.margin;
    return *this;
  }
};

/// Everything a context-aware strategy may condition a price on. Built
/// by the seller engine once per priced offer; plain strategies ignore
/// it (the engine only assembles it when wants_context() is true).
struct QuoteContext {
  double true_cost_ms = 0.0;      ///< honest local estimate
  std::string signature;          ///< CanonicalSignature(query).text
  QueryShape shape;               ///< CanonicalShape(query)
  /// Partition coverage of the offer, as sorted "t<i>:<partition_id>"
  /// items (positional alias ids, matching shape.aliases). Containment
  /// of coverage sets composes with ShapeContains to decide whether one
  /// priced commodity subsumes another.
  std::vector<std::string> coverage;
};

/// Result of one finished negotiation, from this seller's side.
struct TradeOutcome {
  bool won = false;
  /// Realized margin of the decisive offer: (quote - true) / true.
  /// 0 when the true cost was unknown or zero.
  double realized_margin = 0.0;
};

/// Seller-side pricing policy.
class SellerStrategy {
 public:
  virtual ~SellerStrategy() = default;

  /// Value quoted to the buyer for an answer whose honest local estimate
  /// is `true_cost_ms`. Must be >= true cost for rational sellers.
  virtual double Quote(double true_cost_ms) = 0;

  /// True when the strategy wants QuoteWithContext instead of Quote.
  /// The engine caches this at construction: it must be constant.
  virtual bool wants_context() const { return false; }

  /// Context-aware pricing; default delegates to Quote. Only called
  /// when wants_context() is true (the context is not free to build).
  virtual double QuoteWithContext(const QuoteContext& ctx) {
    return Quote(ctx.true_cost_ms);
  }

  /// Feedback after a negotiation: did our offer win?
  virtual void OnOutcome(bool /*won*/) {}

  /// Rich feedback after a negotiation; default forwards to OnOutcome
  /// so legacy strategies keep working unchanged.
  virtual void OnTradeOutcome(const TradeOutcome& outcome) {
    OnOutcome(outcome.won);
  }

  /// Lowest quote the seller would still accept for this answer (used by
  /// auction/bargaining rounds to decide whether to undercut).
  virtual double ReservationValue(double true_cost_ms) {
    return true_cost_ms;
  }

  /// Cumulative pricing statistics; default is all-zero for strategies
  /// that do not track any.
  virtual StrategyStats Stats() const { return {}; }

  virtual std::string name() const = 0;
};

/// Cooperative: quote == true cost.
class TruthfulStrategy : public SellerStrategy {
 public:
  double Quote(double true_cost_ms) override {
    ++quotes_;
    return true_cost_ms;
  }

  void OnOutcome(bool won) override { ++(won ? wins_ : losses_); }

  StrategyStats Stats() const override {
    StrategyStats s;
    s.quotes = quotes_;
    s.wins = wins_;
    s.losses = losses_;
    return s;
  }

  std::string name() const override { return "truthful"; }

 private:
  int64_t quotes_ = 0;
  int64_t wins_ = 0;
  int64_t losses_ = 0;
};

/// Competitive: quote = true * (1 + margin); margin creeps up after wins
/// and shrinks after losses, within [0, max_margin].
///
/// Update rule (asymmetric on purpose): a win raises the margin by
/// `step`, a loss cuts it by `2 * step` — losing means the market price
/// is below ours, and correcting a losing price war should be faster
/// than probing upward. The margin is clamped to [0, max_margin] after
/// every update. The steps themselves are NOT damped, so the rule only
/// settles when wins and losses balance at 2:1; choose
/// `step <= max_margin / 3` or the margin ping-pongs between the clamp
/// rails forever under alternating outcomes. Non-converging
/// parameterizations are caught by the strategy-matrix explorer's
/// convergence invariant (sim/strategy_matrix.h), not silently
/// tolerated here — keeping the arithmetic exact preserves the
/// documented 0.3 -> 0.35 -> 0.25 trajectories tests pin.
class AdaptiveMarkupStrategy : public SellerStrategy {
 public:
  explicit AdaptiveMarkupStrategy(double initial_margin = 0.3,
                                  double step = 0.05,
                                  double max_margin = 1.0)
      : margin_(initial_margin), step_(step), max_margin_(max_margin) {}

  double Quote(double true_cost_ms) override {
    ++quotes_;
    return true_cost_ms * (1.0 + margin_);
  }

  void OnOutcome(bool won) override {
    ++(won ? wins_ : losses_);
    margin_ += won ? step_ : -2 * step_;
    if (margin_ < 0) margin_ = 0;
    if (margin_ > max_margin_) margin_ = max_margin_;
  }

  StrategyStats Stats() const override {
    StrategyStats s;
    s.quotes = quotes_;
    s.wins = wins_;
    s.losses = losses_;
    s.margin = margin_;
    return s;
  }

  double margin() const { return margin_; }
  std::string name() const override { return "adaptive-markup"; }

 private:
  double margin_;
  double step_;
  double max_margin_;
  int64_t quotes_ = 0;
  int64_t wins_ = 0;
  int64_t losses_ = 0;
};

/// Arbitrage-free markup pricing over the query containment lattice.
///
/// The strategy keeps a bounded price book keyed by (canonical shape,
/// partition coverage). Each new commodity is priced at
/// true * (1 + margin) and then clamped into the interval the book
/// already implies:
///
///   max quote of book entries this commodity CONTAINS   (lower bound)
///     <= quote <=
///   min quote of book entries that CONTAIN this commodity (upper bound)
///
/// where "A contains B" means ShapeContains(A.shape, B.shape) and A's
/// coverage includes B's. The interval is never empty: every earlier
/// pair of book entries already satisfies the same ordering, so bounds
/// inherit consistency by induction. Once priced, a commodity's quote
/// is pinned — repeat requests return the recorded price even after the
/// margin has moved — which makes the emitted price function
/// arbitrage-free over the entire history, not just within one
/// negotiation: a buyer can never assemble a contained query more
/// cheaply than the price we ever asked for it.
///
/// The margin adapts symmetrically (+step on win, -step on loss,
/// clamped to [0, max_margin]) and only influences commodities not yet
/// in the book. The book holds at most `capacity` entries; the oldest
/// entry is evicted first, which bounds memory but also bounds how far
/// back the arbitrage-freeness guarantee reaches (evicted prices can no
/// longer pin new ones). Stats() reports quotes/clamped/pinned.
class ContainmentAwareStrategy : public SellerStrategy {
 public:
  explicit ContainmentAwareStrategy(double initial_margin = 0.3,
                                    double step = 0.05,
                                    double max_margin = 1.0,
                                    size_t capacity = 1024);

  bool wants_context() const override { return true; }
  double Quote(double true_cost_ms) override;
  double QuoteWithContext(const QuoteContext& ctx) override;
  void OnTradeOutcome(const TradeOutcome& outcome) override;
  StrategyStats Stats() const override;
  std::string name() const override { return "containment-aware"; }

  double margin() const { return margin_; }
  size_t book_size() const { return book_.size(); }

 private:
  struct Entry {
    std::string key;  // signature + coverage, the exact-match pin key
    QueryShape shape;
    std::vector<std::string> coverage;  // sorted
    double quote = 0.0;
  };

  /// True when `outer` subsumes `inner`: every answer of `inner` is
  /// derivable from `outer`'s answer over the same (or wider) coverage.
  static bool Subsumes(const QueryShape& outer_shape,
                       const std::vector<std::string>& outer_cov,
                       const QueryShape& inner_shape,
                       const std::vector<std::string>& inner_cov);

  double margin_;
  double step_;
  double max_margin_;
  size_t capacity_;
  std::deque<Entry> book_;                 // oldest first
  std::map<std::string, double> pinned_;   // key -> quote, mirrors book_
  StrategyStats stats_;
};

/// History-based adaptive pricing for repeated negotiations: the margin
/// follows the win rate over a sliding window of recent outcomes, moved
/// by a step that decays with every observed outcome, plus a seeded
/// exploration jitter that decays the same way. The jitter is re-drawn
/// only when an outcome is observed, so between outcomes every quote is
/// the same fixed multiple of true cost — prices inside one outcome
/// epoch inherit the cost model's containment ordering instead of being
/// scrambled by independent per-quote draws. Both decays guarantee the
/// quoted prices converge (the strategy-matrix explorer asserts the
/// convergence window); the seed makes the whole trajectory replayable
/// byte for byte.
class HistoryAdaptiveStrategy : public SellerStrategy {
 public:
  explicit HistoryAdaptiveStrategy(uint64_t seed = 42,
                                   double initial_margin = 0.4,
                                   double base_step = 0.08,
                                   double base_jitter = 0.04,
                                   double max_margin = 1.0,
                                   size_t window = 8);

  double Quote(double true_cost_ms) override;
  void OnTradeOutcome(const TradeOutcome& outcome) override;
  StrategyStats Stats() const override;
  std::string name() const override { return "history-adaptive"; }

  double margin() const { return margin_; }
  /// Win rate over the current window; 0.5 before any outcome.
  double WindowWinRate() const;

 private:
  /// Per-outcome decay factor: 1 / (1 + outcomes_seen / 4).
  double Decay() const;

  Rng rng_;
  double margin_;
  double base_step_;
  double base_jitter_;
  double max_margin_;
  size_t window_;
  std::deque<bool> recent_;  // newest at back
  int64_t outcomes_seen_ = 0;
  /// Current exploration jitter draw; constant until the next outcome.
  double jitter_ = 0.0;
  StrategyStats stats_;
};

/// Buyer-side value estimation (paper Fig. 2, step B1): what is a query
/// worth to us? Used as a reserve value in auctions/bargaining. The
/// estimate starts from the externally supplied v0 and is refreshed from
/// the best plan of the previous iteration.
class BuyerStrategy {
 public:
  virtual ~BuyerStrategy() = default;

  /// Reserve value for a traded query. `previous_estimate` is the value
  /// carried on the Q-set entry (v0 for the original query, the current
  /// plan's matching remote cost for derived queries); <= 0 means
  /// unknown.
  virtual double Reserve(const std::string& rfb_id,
                         double previous_estimate) = 0;

  /// Counter-offer value for a bargaining round, given the best quote so
  /// far. Returning >= best_quote means "accept".
  virtual double CounterOffer(double best_quote, int round) = 0;
};

/// Default buyer: accepts anything when no estimate exists; in
/// bargaining, pushes quotes down by a shrinking discount per round.
/// CounterOffer is monotone non-decreasing in `round` and accepts
/// (returns best_quote) once discount + 0.05 * round reaches 1.0 — for
/// the default 0.85 discount that is round 3.
class DefaultBuyerStrategy : public BuyerStrategy {
 public:
  explicit DefaultBuyerStrategy(double slack = 1.25,
                                double bargain_discount = 0.85)
      : slack_(slack), discount_(bargain_discount) {}

  double Reserve(const std::string& rfb_id,
                 double previous_estimate) override {
    (void)rfb_id;
    if (previous_estimate <= 0) return -1;  // unknown: no reserve
    return previous_estimate * slack_;
  }

  double CounterOffer(double best_quote, int round) override {
    // Rounds 0,1,2... demand 15%, 10%, 5% discounts, then accept.
    double factor = discount_ + 0.05 * round;
    if (factor >= 1.0) return best_quote;
    return best_quote * factor;
  }

 private:
  double slack_;
  double discount_;
};

}  // namespace qtrade

#endif  // QTRADE_TRADING_STRATEGY_H_
