// Buyer predicates analyser (paper §3.7): mines the current iteration's
// offers and candidate plans for *new* queries worth trading next round.
//
// The concrete mechanism (partition-aligned instance of the paper's
// union-redundancy example): when two offers for the same relation subset
// overlap — typical under replication — they cannot be UNIONed soundly,
// so the analyser emits the original query restricted to the part of the
// second offer's coverage that the first does not provide. In the next
// iteration sellers bid on exactly the missing slice, which is cheaper to
// produce and ship, and the plan generator can now combine both sellers.
#ifndef QTRADE_TRADING_BUYER_ANALYSER_H_
#define QTRADE_TRADING_BUYER_ANALYSER_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "opt/offer.h"
#include "opt/plan_assembler.h"
#include "trading/messages.h"

namespace qtrade {

/// Builds the SQL for the `original` query restricted to `aliases` and to
/// the given partitions per alias (the §3.7 derived queries). Outputs are
/// the columns the buyer needs from that fragment (projection, grouping,
/// aggregation inputs and border join columns).
sql::SelectStmt BuildRestrictedSubsetQuery(
    const sql::BoundQuery& original, const std::set<std::string>& aliases,
    const std::map<std::string, std::set<std::string>>& box,
    const FederationSchema& federation);

class BuyerAnalyser {
 public:
  BuyerAnalyser(const sql::BoundQuery* original,
                const FederationSchema* federation)
      : original_(original), federation_(federation) {}

  /// Derives new traded queries from this iteration's offers. Queries
  /// whose SQL is in `already_asked` are suppressed; each returned query
  /// carries its ask-box for later offer clipping.
  std::vector<TradedQuery> Analyse(
      const std::vector<Offer>& offers,
      const std::vector<CandidatePlan>& candidates,
      const std::set<std::string>& already_asked, int iteration);

 private:
  const sql::BoundQuery* original_;
  const FederationSchema* federation_;
};

}  // namespace qtrade

#endif  // QTRADE_TRADING_BUYER_ANALYSER_H_
